//! The simulated enclave.
//!
//! An [`Enclave`] is the per-node trusted computing base: it owns every secret a
//! Recipe replica uses (channel MAC keys, signing keys, cipher keys), its trusted
//! monotonic counters and leases, and the EPC accounting. Code "inside" the enclave
//! is simply code that holds the `Enclave` handle; the untrusted host side of a node
//! never receives one, mirroring the SGX isolation boundary in the type system
//! rather than in hardware.

use std::collections::HashMap;
use std::fmt;

use recipe_crypto::{
    hash_parts, Cipher, CipherKey, Digest, EphemeralSecret, KxPublic, MacKey, Nonce, SharedSecret,
    SigningKeyPair,
};
use serde::{Deserialize, Serialize};

use crate::counter::TrustedCounter;
use crate::epc::EpcModel;
use crate::error::TeeError;
use crate::quote::{HardwareKey, Quote, Report};
use crate::sealed::SealedBlob;

/// Identifier of an enclave instance (unique per node in a deployment).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct EnclaveId(pub u64);

/// Measurement of the code and initial data loaded into an enclave (SGX `MRENCLAVE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Measurement(Digest);

impl Measurement {
    /// Measures a code identity string (stand-in for hashing the enclave binary).
    pub fn of_code(code_identity: &str) -> Self {
        Measurement(hash_parts(&[
            b"recipe.tee.measurement",
            code_identity.as_bytes(),
        ]))
    }

    /// The underlying digest.
    pub fn digest(&self) -> &Digest {
        &self.0
    }
}

/// Static configuration for creating an enclave.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnclaveConfig {
    /// Identity of the code to load (the protocol binary); determines the
    /// measurement and therefore what the CAS will accept.
    pub code_identity: String,
    /// Platform (machine) on which the enclave runs; determines the hardware key.
    pub platform_id: u64,
    /// Usable EPC bytes; `None` selects [`crate::epc::DEFAULT_EPC_BYTES`].
    pub epc_bytes: Option<usize>,
}

impl EnclaveConfig {
    /// Creates a config with the default EPC size.
    pub fn new(code_identity: impl Into<String>, platform_id: u64) -> Self {
        EnclaveConfig {
            code_identity: code_identity.into(),
            platform_id,
            epc_bytes: None,
        }
    }

    /// Overrides the EPC size.
    pub fn with_epc_bytes(mut self, bytes: usize) -> Self {
        self.epc_bytes = Some(bytes);
        self
    }

    /// Measurement this configuration will produce.
    pub fn measurement(&self) -> Measurement {
        Measurement::of_code(&self.code_identity)
    }
}

/// A per-node simulated enclave.
pub struct Enclave {
    id: EnclaveId,
    config: EnclaveConfig,
    measurement: Measurement,
    hardware_key: HardwareKey,
    platform_secret: MacKey,
    epc: EpcModel,
    crashed: bool,

    // Secrets provisioned after attestation. Reachable only through this handle.
    mac_keys: HashMap<String, MacKey>,
    cipher_keys: HashMap<String, CipherKey>,
    signing_key: Option<SigningKeyPair>,

    // Ephemeral key-exchange secret generated during attestation.
    kx_secret: Option<EphemeralSecret>,

    // Trusted monotonic counters, keyed by channel label.
    counters: HashMap<String, TrustedCounter>,
}

impl Enclave {
    /// Launches an enclave: measures the code identity and derives platform keys.
    pub fn launch(id: EnclaveId, config: EnclaveConfig) -> Self {
        let measurement = config.measurement();
        let hardware_key = HardwareKey::for_platform(config.platform_id);
        // The platform sealing secret is derived from the platform id; like the
        // hardware key it stands in for a fused secret.
        let platform_secret = MacKey::from_bytes(
            *hash_parts(&[b"recipe.tee.platform", &config.platform_id.to_le_bytes()]).as_bytes(),
        );
        let epc = match config.epc_bytes {
            Some(bytes) => EpcModel::new(bytes),
            None => EpcModel::default(),
        };
        Enclave {
            id,
            measurement,
            hardware_key,
            platform_secret,
            epc,
            crashed: false,
            mac_keys: HashMap::new(),
            cipher_keys: HashMap::new(),
            signing_key: None,
            kx_secret: None,
            counters: HashMap::new(),
            config,
        }
    }

    /// The enclave's id.
    pub fn id(&self) -> EnclaveId {
        self.id
    }

    /// The enclave's measurement.
    pub fn measurement(&self) -> &Measurement {
        &self.measurement
    }

    /// The configuration the enclave was launched with.
    pub fn config(&self) -> &EnclaveConfig {
        &self.config
    }

    /// Public half of this platform's hardware attestation key (what the vendor
    /// would publish for verifiers).
    pub fn platform_vendor_key(&self) -> recipe_crypto::PublicKey {
        self.hardware_key.public()
    }

    /// Crash-fails the enclave. Every subsequent operation returns
    /// [`TeeError::EnclaveCrashed`]; this is the only failure mode the TCB has.
    pub fn crash(&mut self) {
        self.crashed = true;
    }

    /// True if the enclave has crash-failed.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    fn ensure_alive(&self) -> Result<(), TeeError> {
        if self.crashed {
            Err(TeeError::EnclaveCrashed)
        } else {
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // Attestation (Algorithm 2: attest / generate_quote)
    // ------------------------------------------------------------------

    /// `attest()`: produces a report binding the challenger's nonce and a fresh
    /// ephemeral key-exchange public value to this enclave's measurement.
    pub fn attest<R: rand::RngCore>(
        &mut self,
        nonce: Nonce,
        rng: &mut R,
    ) -> Result<Report, TeeError> {
        self.ensure_alive()?;
        let kx = EphemeralSecret::generate(rng);
        let kx_public = *kx.public().as_bytes();
        self.kx_secret = Some(kx);
        Ok(Report {
            enclave_id: self.id,
            measurement: self.measurement,
            nonce,
            kx_public,
        })
    }

    /// `generate_quote()`: signs a report with the platform hardware key.
    pub fn generate_quote(&self, report: Report) -> Result<Quote, TeeError> {
        self.ensure_alive()?;
        let signature = self.hardware_key.sign_report(&report);
        Ok(Quote {
            report,
            signature,
            platform_id: self.config.platform_id,
        })
    }

    /// Completes the attestation key exchange with the challenger's public value,
    /// returning the shared secret under which provisioned secrets are protected.
    pub fn complete_key_exchange(&self, challenger: &KxPublic) -> Result<SharedSecret, TeeError> {
        self.ensure_alive()?;
        let kx = self.kx_secret.as_ref().ok_or(TeeError::MissingSecret {
            label: "attestation ephemeral key".to_owned(),
        })?;
        Ok(kx.derive_shared(challenger))
    }

    // ------------------------------------------------------------------
    // Secret provisioning and access
    // ------------------------------------------------------------------

    /// Installs a channel MAC key under `label`.
    pub fn provision_mac_key(
        &mut self,
        label: impl Into<String>,
        key: MacKey,
    ) -> Result<(), TeeError> {
        self.ensure_alive()?;
        self.mac_keys.insert(label.into(), key);
        Ok(())
    }

    /// Returns the MAC key provisioned under `label`.
    pub fn mac_key(&self, label: &str) -> Result<&MacKey, TeeError> {
        self.ensure_alive()?;
        self.mac_keys
            .get(label)
            .ok_or_else(|| TeeError::MissingSecret {
                label: label.to_owned(),
            })
    }

    /// Installs a cipher key under `label` (confidentiality mode).
    pub fn provision_cipher_key(
        &mut self,
        label: impl Into<String>,
        key: CipherKey,
    ) -> Result<(), TeeError> {
        self.ensure_alive()?;
        self.cipher_keys.insert(label.into(), key);
        Ok(())
    }

    /// Builds a cipher from the key provisioned under `label`.
    pub fn cipher(&self, label: &str) -> Result<Cipher, TeeError> {
        self.ensure_alive()?;
        self.cipher_keys
            .get(label)
            .map(Cipher::new)
            .ok_or_else(|| TeeError::MissingSecret {
                label: label.to_owned(),
            })
    }

    /// Installs the node's signing key pair.
    pub fn install_signing_key(&mut self, keys: SigningKeyPair) -> Result<(), TeeError> {
        self.ensure_alive()?;
        self.signing_key = Some(keys);
        Ok(())
    }

    /// Returns the node's signing key pair.
    pub fn signing_key(&self) -> Result<&SigningKeyPair, TeeError> {
        self.ensure_alive()?;
        self.signing_key.as_ref().ok_or(TeeError::MissingSecret {
            label: "signing key".to_owned(),
        })
    }

    /// Lists the labels of all provisioned MAC keys (for diagnostics and tests).
    pub fn provisioned_channels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self.mac_keys.keys().cloned().collect();
        labels.sort();
        labels
    }

    // ------------------------------------------------------------------
    // Trusted counters
    // ------------------------------------------------------------------

    /// Returns a mutable reference to the trusted counter for `channel`, creating it
    /// at zero on first use.
    pub fn counter_mut(&mut self, channel: &str) -> Result<&mut TrustedCounter, TeeError> {
        self.ensure_alive()?;
        Ok(self.counters.entry(channel.to_owned()).or_default())
    }

    /// Returns the current value of the trusted counter for `channel` (zero if the
    /// counter has never been used).
    pub fn counter_value(&self, channel: &str) -> u64 {
        self.counters
            .get(channel)
            .map(TrustedCounter::current)
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // EPC accounting
    // ------------------------------------------------------------------

    /// Immutable access to the EPC model.
    pub fn epc(&self) -> &EpcModel {
        &self.epc
    }

    /// Mutable access to the EPC model.
    pub fn epc_mut(&mut self) -> &mut EpcModel {
        &mut self.epc
    }

    // ------------------------------------------------------------------
    // Sealing
    // ------------------------------------------------------------------

    /// Seals `plaintext` so only an enclave with the same measurement on the same
    /// platform can recover it.
    pub fn seal(
        &self,
        label: &str,
        nonce: Nonce,
        plaintext: &[u8],
    ) -> Result<SealedBlob, TeeError> {
        self.ensure_alive()?;
        Ok(SealedBlob::seal(
            &self.platform_secret,
            &self.measurement,
            label,
            nonce,
            plaintext,
        ))
    }

    /// Unseals a blob previously produced by [`Enclave::seal`] on this platform with
    /// this measurement.
    pub fn unseal(&self, blob: &SealedBlob) -> Result<Vec<u8>, TeeError> {
        self.ensure_alive()?;
        blob.unseal(&self.platform_secret, &self.measurement)
    }
}

impl fmt::Debug for Enclave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Enclave")
            .field("id", &self.id)
            .field("measurement", &self.measurement.digest().short_hex())
            .field("crashed", &self.crashed)
            .field("channels", &self.mac_keys.len())
            .field("counters", &self.counters.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    fn enclave() -> Enclave {
        Enclave::launch(EnclaveId(1), EnclaveConfig::new("raft-replica-v1", 10))
    }

    #[test]
    fn launch_measures_code_identity() {
        let e = enclave();
        assert_eq!(e.measurement(), &Measurement::of_code("raft-replica-v1"));
        assert_eq!(e.id(), EnclaveId(1));
        assert!(!e.is_crashed());
    }

    #[test]
    fn attestation_quote_verifies_against_vendor_key() {
        let mut e = enclave();
        let nonce = Nonce::from_u128(77);
        let report = e.attest(nonce, &mut rng()).unwrap();
        let quote = e.generate_quote(report).unwrap();
        let expected = Measurement::of_code("raft-replica-v1");
        assert!(quote
            .verify(&e.platform_vendor_key(), &expected, &nonce)
            .is_ok());
    }

    #[test]
    fn key_exchange_agrees_with_challenger() {
        let mut e = enclave();
        let mut r = rng();
        let report = e.attest(Nonce::from_u128(1), &mut r).unwrap();
        let challenger = EphemeralSecret::generate(&mut r);
        let enclave_side = e
            .complete_key_exchange(&challenger.public())
            .unwrap()
            .derive_mac_key("provisioning");
        let challenger_side = challenger
            .derive_shared(&KxPublic::try_from_slice(&report.kx_public).unwrap())
            .derive_mac_key("provisioning");
        assert_eq!(enclave_side, challenger_side);
    }

    #[test]
    fn key_exchange_requires_prior_attest() {
        let e = enclave();
        let mut r = rng();
        let challenger = EphemeralSecret::generate(&mut r);
        assert!(matches!(
            e.complete_key_exchange(&challenger.public()),
            Err(TeeError::MissingSecret { .. })
        ));
    }

    #[test]
    fn secrets_are_label_scoped() {
        let mut e = enclave();
        let key = MacKey::from_bytes([1u8; 32]);
        e.provision_mac_key("cq:0->1", key.clone()).unwrap();
        assert_eq!(e.mac_key("cq:0->1").unwrap(), &key);
        assert!(matches!(
            e.mac_key("cq:0->2"),
            Err(TeeError::MissingSecret { .. })
        ));
        assert_eq!(e.provisioned_channels(), vec!["cq:0->1".to_owned()]);
    }

    #[test]
    fn signing_key_installation() {
        let mut e = enclave();
        assert!(e.signing_key().is_err());
        e.install_signing_key(SigningKeyPair::generate_from_seed(5))
            .unwrap();
        assert!(e.signing_key().is_ok());
    }

    #[test]
    fn cipher_provisioning() {
        let mut e = enclave();
        assert!(e.cipher("values").is_err());
        e.provision_cipher_key("values", CipherKey::from_bytes([2u8; 32]))
            .unwrap();
        let cipher = e.cipher("values").unwrap();
        let ct = cipher.seal(Nonce::from_u128(1), b"v");
        assert_eq!(cipher.open(&ct).unwrap(), b"v");
    }

    #[test]
    fn counters_are_per_channel_and_persistent() {
        let mut e = enclave();
        assert_eq!(e.counter_value("cq:0->1"), 0);
        assert_eq!(e.counter_mut("cq:0->1").unwrap().increment(), 1);
        assert_eq!(e.counter_mut("cq:0->1").unwrap().increment(), 2);
        assert_eq!(e.counter_mut("cq:0->2").unwrap().increment(), 1);
        assert_eq!(e.counter_value("cq:0->1"), 2);
        assert_eq!(e.counter_value("cq:0->2"), 1);
    }

    #[test]
    fn sealing_roundtrip_and_cross_enclave_rejection() {
        let e = enclave();
        let blob = e.seal("state", Nonce::from_u128(9), b"log tail").unwrap();
        assert_eq!(e.unseal(&blob).unwrap(), b"log tail");

        // Same platform, different code → different measurement → unseal fails.
        let other = Enclave::launch(EnclaveId(2), EnclaveConfig::new("different-code", 10));
        assert_eq!(other.unseal(&blob), Err(TeeError::UnsealFailed));
    }

    #[test]
    fn crashed_enclave_refuses_everything() {
        let mut e = enclave();
        e.provision_mac_key("cq", MacKey::from_bytes([1u8; 32]))
            .unwrap();
        e.crash();
        assert!(e.is_crashed());
        assert_eq!(e.mac_key("cq").unwrap_err(), TeeError::EnclaveCrashed);
        assert_eq!(
            e.attest(Nonce::from_u128(1), &mut rng()).unwrap_err(),
            TeeError::EnclaveCrashed
        );
        assert_eq!(e.counter_mut("cq").unwrap_err(), TeeError::EnclaveCrashed);
        assert_eq!(
            e.seal("s", Nonce::from_u128(1), b"x").unwrap_err(),
            TeeError::EnclaveCrashed
        );
    }

    #[test]
    fn epc_accounting_is_exposed() {
        let mut e = Enclave::launch(
            EnclaveId(3),
            EnclaveConfig::new("code", 1).with_epc_bytes(1024),
        );
        e.epc_mut().allocate(2048).unwrap();
        assert!(e.epc().pressure_factor() > 1.0);
    }

    #[test]
    fn debug_output_omits_secrets() {
        let mut e = enclave();
        e.provision_mac_key("cq", MacKey::from_bytes([0xAB; 32]))
            .unwrap();
        let text = format!("{e:?}");
        assert!(!text.contains("ab, ab"));
        assert!(text.contains("Enclave"));
    }
}

//! Sealed storage: encrypting enclave secrets for persistence in untrusted memory.
//!
//! SGX sealing encrypts data under a key derived from the enclave measurement so that
//! only the same enclave (on the same platform) can unseal it. Recipe uses sealing
//! for durable state a replica needs across restarts (e.g. its signing-key seed), in
//! combination with the recovery protocol of §3.7 (recovered nodes rejoin as fresh
//! replicas after re-attestation).

use recipe_crypto::{Cipher, CipherKey, Ciphertext, MacKey, Nonce};
use serde::{Deserialize, Serialize};

use crate::enclave::Measurement;
use crate::error::TeeError;

/// An encrypted, integrity-protected blob that can live in untrusted host memory or
/// on untrusted disk.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedBlob {
    /// Label identifying what was sealed (not secret, bound into the MAC).
    pub label: String,
    ciphertext: Ciphertext,
}

impl SealedBlob {
    /// Seals `plaintext` under a key derived from the platform hardware secret and
    /// the enclave measurement.
    pub(crate) fn seal(
        platform_secret: &MacKey,
        measurement: &Measurement,
        label: &str,
        nonce: Nonce,
        plaintext: &[u8],
    ) -> SealedBlob {
        let cipher = Cipher::new(&Self::sealing_key(platform_secret, measurement, label));
        SealedBlob {
            label: label.to_owned(),
            ciphertext: cipher.seal(nonce, plaintext),
        }
    }

    /// Unseals the blob; fails if the measurement, platform, label or ciphertext do
    /// not match what was sealed.
    pub(crate) fn unseal(
        &self,
        platform_secret: &MacKey,
        measurement: &Measurement,
    ) -> Result<Vec<u8>, TeeError> {
        let cipher = Cipher::new(&Self::sealing_key(
            platform_secret,
            measurement,
            &self.label,
        ));
        cipher
            .open(&self.ciphertext)
            .map_err(|_| TeeError::UnsealFailed)
    }

    /// Size of the sealed blob on the wire / on disk.
    pub fn len(&self) -> usize {
        self.ciphertext.wire_len() + self.label.len()
    }

    /// True if the sealed payload was empty.
    pub fn is_empty(&self) -> bool {
        self.ciphertext.bytes.is_empty()
    }

    fn sealing_key(platform_secret: &MacKey, measurement: &Measurement, label: &str) -> CipherKey {
        let derived = platform_secret
            .derive("recipe.tee.sealing")
            .derive(&measurement.digest().to_hex())
            .derive(label);
        let mut bytes = [0u8; 32];
        bytes.copy_from_slice(derived.tag(b"sealing-key").as_bytes());
        CipherKey::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> MacKey {
        MacKey::from_bytes([5u8; 32])
    }

    fn measurement() -> Measurement {
        Measurement::of_code("replica-code-v1")
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let blob = SealedBlob::seal(
            &platform(),
            &measurement(),
            "signing-key",
            Nonce::from_u128(1),
            b"super secret seed",
        );
        assert_eq!(
            blob.unseal(&platform(), &measurement()).unwrap(),
            b"super secret seed"
        );
        assert!(!blob.is_empty());
        assert!(blob.len() > b"super secret seed".len());
    }

    #[test]
    fn different_measurement_cannot_unseal() {
        let blob = SealedBlob::seal(
            &platform(),
            &measurement(),
            "signing-key",
            Nonce::from_u128(1),
            b"secret",
        );
        let other = Measurement::of_code("patched-malicious-code");
        assert_eq!(
            blob.unseal(&platform(), &other),
            Err(TeeError::UnsealFailed)
        );
    }

    #[test]
    fn different_platform_cannot_unseal() {
        let blob = SealedBlob::seal(
            &platform(),
            &measurement(),
            "signing-key",
            Nonce::from_u128(1),
            b"secret",
        );
        let other_platform = MacKey::from_bytes([6u8; 32]);
        assert_eq!(
            blob.unseal(&other_platform, &measurement()),
            Err(TeeError::UnsealFailed)
        );
    }

    #[test]
    fn relabelled_blob_cannot_unseal() {
        let mut blob = SealedBlob::seal(
            &platform(),
            &measurement(),
            "signing-key",
            Nonce::from_u128(1),
            b"secret",
        );
        blob.label = "other-label".to_owned();
        assert!(blob.unseal(&platform(), &measurement()).is_err());
    }

    #[test]
    fn empty_payload_supported() {
        let blob = SealedBlob::seal(
            &platform(),
            &measurement(),
            "empty",
            Nonce::from_u128(1),
            b"",
        );
        assert!(blob.is_empty());
        assert_eq!(blob.unseal(&platform(), &measurement()).unwrap(), b"");
    }
}

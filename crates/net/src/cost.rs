//! Calibrated network cost model.
//!
//! The paper's Figure 6b measures the throughput (Gb/s) of five stacks as a function
//! of payload size: kernel sockets and direct I/O, each natively and inside a TEE,
//! plus `Recipe-lib (net)` (direct I/O inside a TEE with the authentication and
//! non-equivocation layers on top). Because no NIC hardware is available (DESIGN.md,
//! substitutions), this module models each stack with a per-message fixed cost and a
//! per-byte cost, calibrated so the relative ordering and rough magnitudes of the
//! paper hold:
//!
//! * direct I/O beats kernel sockets (no syscall per packet);
//! * running inside a TEE degrades either stack by roughly 4×–8× (enclave
//!   transitions, memory encryption);
//! * `Recipe-lib (net)` performs up to ~1.66× better than kernel sockets inside a
//!   TEE, paying only the MAC/counter work on top of direct I/O.
//!
//! The same per-message costs drive the discrete-event simulator's virtual clock, so
//! the end-to-end protocol experiments and the Figure 6b microbenchmark are
//! consistent with each other.

use serde::{Deserialize, Serialize};

/// Which networking stack carries the traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// Conventional kernel sockets (send/recv syscalls per message).
    KernelSockets,
    /// Kernel-bypass direct I/O (RDMA / DPDK user-space driver).
    DirectIo,
}

/// Whether the stack runs natively or inside a TEE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecMode {
    /// Unprotected execution.
    Native,
    /// Execution inside an enclave (SCONE-style shielded runtime).
    Tee,
}

/// Per-stack cost parameters and derived throughput estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetCostModel {
    /// Fixed per-message cost of a kernel-socket send or receive, nanoseconds.
    pub kernel_per_msg_ns: f64,
    /// Fixed per-message cost of a direct-I/O send or receive, nanoseconds.
    pub directio_per_msg_ns: f64,
    /// Per-byte cost on the wire/DMA path, nanoseconds per byte (≈ line rate).
    pub per_byte_ns: f64,
    /// Multiplier applied to the per-message cost when the stack runs inside a TEE
    /// over kernel sockets (syscall exits are very expensive).
    pub tee_kernel_penalty: f64,
    /// Multiplier applied to the per-message cost when the stack runs inside a TEE
    /// over direct I/O (no syscalls, but enclave boundary copies remain).
    pub tee_directio_penalty: f64,
    /// Per-byte multiplier inside a TEE (memory encryption / copies).
    pub tee_per_byte_penalty: f64,
    /// Extra per-message cost of Recipe's authentication + non-equivocation layers
    /// (MAC computation dominates), nanoseconds.
    pub recipe_auth_per_msg_ns: f64,
    /// Extra per-byte cost of Recipe's authentication layer (hashing the payload),
    /// nanoseconds per byte.
    pub recipe_auth_per_byte_ns: f64,
}

impl Default for NetCostModel {
    fn default() -> Self {
        // Calibration anchors (approximate, from the literature the paper cites):
        //  - eRPC achieves ~10M small msgs/s/core  → ~100 ns per message.
        //  - kernel UDP path costs ~2–4 µs per message with syscall + copy.
        //  - 40 GbE line rate ≈ 0.2 ns per byte; we charge a slightly higher
        //    per-byte cost to account for copies.
        //  - SCONE-style TEE runtimes degrade socket I/O by ~6–8× and direct I/O by
        //    ~4–5× (paper Figure 6b: 4×–8×).
        NetCostModel {
            kernel_per_msg_ns: 1_200.0,
            directio_per_msg_ns: 180.0,
            per_byte_ns: 0.35,
            tee_kernel_penalty: 3.0,
            tee_directio_penalty: 4.2,
            tee_per_byte_penalty: 2.2,
            recipe_auth_per_msg_ns: 450.0,
            recipe_auth_per_byte_ns: 0.55,
        }
    }
}

impl NetCostModel {
    /// Time (ns) to move one message of `payload_bytes` through the given stack,
    /// excluding Recipe's security layers.
    pub fn message_cost_ns(
        &self,
        transport: Transport,
        mode: ExecMode,
        payload_bytes: usize,
    ) -> f64 {
        let (per_msg, msg_penalty) = match transport {
            Transport::KernelSockets => (self.kernel_per_msg_ns, self.tee_kernel_penalty),
            Transport::DirectIo => (self.directio_per_msg_ns, self.tee_directio_penalty),
        };
        let (msg_mult, byte_mult) = match mode {
            ExecMode::Native => (1.0, 1.0),
            ExecMode::Tee => (msg_penalty, self.tee_per_byte_penalty),
        };
        per_msg * msg_mult + payload_bytes as f64 * self.per_byte_ns * byte_mult
    }

    /// Time (ns) for a message through the full Recipe-lib network stack: direct I/O
    /// inside a TEE plus the authentication/non-equivocation layers.
    pub fn recipe_lib_cost_ns(&self, payload_bytes: usize) -> f64 {
        self.message_cost_ns(Transport::DirectIo, ExecMode::Tee, payload_bytes)
            + self.recipe_auth_per_msg_ns
            + payload_bytes as f64 * self.recipe_auth_per_byte_ns
    }

    /// Goodput in Gbit/s when streaming back-to-back messages of `payload_bytes`
    /// through the given stack.
    pub fn throughput_gbps(
        &self,
        transport: Transport,
        mode: ExecMode,
        payload_bytes: usize,
    ) -> f64 {
        Self::gbps(
            payload_bytes,
            self.message_cost_ns(transport, mode, payload_bytes),
        )
    }

    /// Goodput in Gbit/s of the Recipe-lib network stack.
    pub fn recipe_lib_throughput_gbps(&self, payload_bytes: usize) -> f64 {
        Self::gbps(payload_bytes, self.recipe_lib_cost_ns(payload_bytes))
    }

    fn gbps(payload_bytes: usize, cost_ns: f64) -> f64 {
        if cost_ns <= 0.0 {
            return 0.0;
        }
        (payload_bytes as f64 * 8.0) / cost_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SIZES: [usize; 6] = [64, 256, 1024, 1460, 2048, 4096];

    #[test]
    fn direct_io_beats_kernel_sockets() {
        let m = NetCostModel::default();
        for size in SIZES {
            for mode in [ExecMode::Native, ExecMode::Tee] {
                assert!(
                    m.throughput_gbps(Transport::DirectIo, mode, size)
                        > m.throughput_gbps(Transport::KernelSockets, mode, size),
                    "direct I/O should beat kernel sockets at {size} B in {mode:?}"
                );
            }
        }
    }

    #[test]
    fn tee_degrades_both_stacks_roughly_4x_to_8x() {
        let m = NetCostModel::default();
        for transport in [Transport::KernelSockets, Transport::DirectIo] {
            // Small payloads are where per-message penalties dominate.
            let native = m.throughput_gbps(transport, ExecMode::Native, 64);
            let tee = m.throughput_gbps(transport, ExecMode::Tee, 64);
            let slowdown = native / tee;
            assert!(
                (2.5..=9.0).contains(&slowdown),
                "TEE slowdown for {transport:?} was {slowdown:.1}x"
            );
        }
    }

    #[test]
    fn recipe_lib_beats_kernel_sockets_in_tee() {
        let m = NetCostModel::default();
        for size in SIZES {
            let recipe = m.recipe_lib_throughput_gbps(size);
            let kernel_tee = m.throughput_gbps(Transport::KernelSockets, ExecMode::Tee, size);
            assert!(
                recipe > kernel_tee,
                "Recipe-lib ({recipe:.2} Gb/s) should beat kernel-net TEE ({kernel_tee:.2} Gb/s) at {size} B"
            );
        }
        // The advantage at mid-size payloads should be in the ballpark of the
        // paper's reported 1.66×.
        let ratio = m.recipe_lib_throughput_gbps(1024)
            / m.throughput_gbps(Transport::KernelSockets, ExecMode::Tee, 1024);
        assert!((1.2..=2.5).contains(&ratio), "ratio was {ratio:.2}");
    }

    #[test]
    fn recipe_lib_is_slower_than_raw_direct_io_tee() {
        // The security layers cost something; Recipe-lib can never exceed the raw
        // direct-I/O TEE stack it is built on.
        let m = NetCostModel::default();
        for size in SIZES {
            assert!(
                m.recipe_lib_throughput_gbps(size)
                    <= m.throughput_gbps(Transport::DirectIo, ExecMode::Tee, size)
            );
        }
    }

    #[test]
    fn native_direct_io_approaches_line_rate_at_large_payloads() {
        let m = NetCostModel::default();
        let gbps = m.throughput_gbps(Transport::DirectIo, ExecMode::Native, 4096);
        assert!(gbps > 15.0, "got {gbps:.1} Gb/s");
        assert!(gbps < 45.0, "got {gbps:.1} Gb/s (40 GbE fabric)");
    }

    #[test]
    fn zero_payload_has_finite_positive_cost() {
        let m = NetCostModel::default();
        assert!(m.message_cost_ns(Transport::DirectIo, ExecMode::Native, 0) > 0.0);
        assert_eq!(
            m.throughput_gbps(Transport::DirectIo, ExecMode::Native, 0),
            0.0
        );
    }

    proptest! {
        #[test]
        fn throughput_increases_with_payload(size_a in 1usize..4096, size_b in 1usize..4096) {
            // Per-message overhead amortizes with payload size, so larger payloads
            // always achieve at least the goodput of smaller ones.
            prop_assume!(size_a < size_b);
            let m = NetCostModel::default();
            for transport in [Transport::KernelSockets, Transport::DirectIo] {
                for mode in [ExecMode::Native, ExecMode::Tee] {
                    prop_assert!(m.throughput_gbps(transport, mode, size_a)
                        <= m.throughput_gbps(transport, mode, size_b) + 1e-9);
                }
            }
        }

        #[test]
        fn costs_are_monotone_in_payload(size in 0usize..8192) {
            let m = NetCostModel::default();
            let small = m.recipe_lib_cost_ns(size);
            let large = m.recipe_lib_cost_ns(size + 1);
            prop_assert!(large >= small);
        }
    }
}

//! Core message and identifier types shared by the networking stack, the Recipe
//! library and the protocols.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (replica or client) in the deployment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Convenience constructor.
    pub const fn new(id: u64) -> Self {
        NodeId(id)
    }

    /// Raw id.
    pub const fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(value: u64) -> Self {
        NodeId(value)
    }
}

/// Identifier of a directed communication channel (the paper's `cq`) between two
/// endpoints.
///
/// Recipe's non-equivocation counter is maintained *per channel*: the sender and
/// receiver each track the latest counter for `(src → dst)`, so replays and
/// reordering are detectable independently on every channel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId {
    /// Sending endpoint.
    pub src: NodeId,
    /// Receiving endpoint.
    pub dst: NodeId,
}

impl ChannelId {
    /// Builds the channel from `src` to `dst`.
    pub const fn new(src: NodeId, dst: NodeId) -> Self {
        ChannelId { src, dst }
    }

    /// The reverse channel (`dst → src`), used for responses.
    pub const fn reverse(&self) -> ChannelId {
        ChannelId {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Stable string label, used to key enclave counters and channel MAC keys.
    pub fn label(&self) -> String {
        format!("cq:{}->{}", self.src.0, self.dst.0)
    }
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cq:{}->{}", self.src.0, self.dst.0)
    }
}

/// Request type tag, dispatching to the handler registered for it
/// (`reg_hdlr(&func)` in Table 3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReqType(pub u16);

impl ReqType {
    /// Replication-phase request (e.g. Raft AppendEntries, CR chain forward).
    pub const REPLICATE: ReqType = ReqType(1);
    /// Commit-phase request.
    pub const COMMIT: ReqType = ReqType(2);
    /// Acknowledgement response.
    pub const ACK: ReqType = ReqType(3);
    /// Client-facing request.
    pub const CLIENT: ReqType = ReqType(4);
    /// View-change / leader-election traffic.
    pub const VIEW_CHANGE: ReqType = ReqType(5);
    /// Attestation / membership traffic.
    pub const MEMBERSHIP: ReqType = ReqType(6);
    /// Read-path request.
    pub const READ: ReqType = ReqType(7);
}

impl fmt::Debug for ReqType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match *self {
            ReqType::REPLICATE => "REPLICATE",
            ReqType::COMMIT => "COMMIT",
            ReqType::ACK => "ACK",
            ReqType::CLIENT => "CLIENT",
            ReqType::VIEW_CHANGE => "VIEW_CHANGE",
            ReqType::MEMBERSHIP => "MEMBERSHIP",
            ReqType::READ => "READ",
            _ => return write!(f, "ReqType({})", self.0),
        };
        write!(f, "{name}")
    }
}

/// A message buffer handed to `send`/`respond` and to request handlers.
///
/// Mirrors eRPC's `MsgBuffer`: an owned byte payload plus the request type. The
/// payload of a Recipe-shielded message is the serialized
/// `recipe_core::ShieldedMessage`.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgBuf {
    /// Request type used for handler dispatch.
    pub req_type: ReqType,
    /// Owned payload bytes.
    pub payload: Vec<u8>,
}

impl MsgBuf {
    /// Creates a buffer.
    pub fn new(req_type: ReqType, payload: Vec<u8>) -> Self {
        MsgBuf { req_type, payload }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

impl fmt::Debug for MsgBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MsgBuf({:?}, {} bytes)",
            self.req_type,
            self.payload.len()
        )
    }
}

/// A framed message in flight on the fabric.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireMessage {
    /// Monotonically increasing per-fabric id (assigned at submission); used for
    /// deterministic tie-breaking and by the replay injector.
    pub wire_id: u64,
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Whether this is a response to an earlier request.
    pub is_response: bool,
    /// Buffer being carried.
    pub buf: MsgBuf,
}

impl WireMessage {
    /// The directed channel this message travels on.
    pub fn channel(&self) -> ChannelId {
        ChannelId::new(self.src, self.dst)
    }

    /// Total bytes on the wire (payload plus a fixed header estimate).
    pub fn wire_bytes(&self) -> usize {
        /// UDP/eRPC-style header estimate: addressing, request type, sequence.
        const HEADER_BYTES: usize = 64;
        HEADER_BYTES + self.buf.len()
    }
}

impl fmt::Debug for WireMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WireMessage(#{} {}→{} {:?} {}B{})",
            self.wire_id,
            self.src,
            self.dst,
            self.buf.req_type,
            self.buf.len(),
            if self.is_response { " resp" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_conversion() {
        let n: NodeId = 7u64.into();
        assert_eq!(format!("{n}"), "n7");
        assert_eq!(format!("{n:?}"), "n7");
        assert_eq!(n.raw(), 7);
    }

    #[test]
    fn channel_reverse_and_label() {
        let cq = ChannelId::new(NodeId(1), NodeId(2));
        assert_eq!(cq.reverse(), ChannelId::new(NodeId(2), NodeId(1)));
        assert_eq!(cq.label(), "cq:1->2");
        assert_eq!(cq.reverse().reverse(), cq);
    }

    #[test]
    fn req_type_debug_names() {
        assert_eq!(format!("{:?}", ReqType::REPLICATE), "REPLICATE");
        assert_eq!(format!("{:?}", ReqType(99)), "ReqType(99)");
    }

    #[test]
    fn msgbuf_accessors() {
        let buf = MsgBuf::new(ReqType::CLIENT, vec![1, 2, 3]);
        assert_eq!(buf.len(), 3);
        assert!(!buf.is_empty());
        assert!(MsgBuf::new(ReqType::ACK, vec![]).is_empty());
    }

    #[test]
    fn wire_message_channel_and_size() {
        let msg = WireMessage {
            wire_id: 1,
            src: NodeId(1),
            dst: NodeId(2),
            is_response: false,
            buf: MsgBuf::new(ReqType::REPLICATE, vec![0u8; 100]),
        };
        assert_eq!(msg.channel(), ChannelId::new(NodeId(1), NodeId(2)));
        assert_eq!(msg.wire_bytes(), 164);
        assert!(format!("{msg:?}").contains("n1→n2"));
    }
}

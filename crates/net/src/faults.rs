//! The Byzantine network adversary.
//!
//! Recipe's fault model places the entire network (and the untrusted host around the
//! enclave) under adversarial control (paper §3.1, fault and threat model): messages
//! may be delayed, dropped, reordered, duplicated, corrupted or replayed. The
//! [`NetworkFaultInjector`] realizes that adversary for both the loopback fabric and
//! the discrete-event simulator; integration tests use it to show that Recipe's
//! authentication and non-equivocation layers neutralize every injected attack.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::types::WireMessage;

/// Probabilities (0.0–1.0) for each adversarial action, evaluated per message.
///
/// Actions are mutually exclusive per message and evaluated in the order
/// drop → tamper → duplicate → replay; anything left over is delivered untouched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability the message is silently dropped.
    pub drop_probability: f64,
    /// Probability the payload is corrupted before delivery.
    pub tamper_probability: f64,
    /// Probability the message is delivered twice.
    pub duplicate_probability: f64,
    /// Probability a previously observed message on the same channel is replayed
    /// alongside this one.
    pub replay_probability: f64,
    /// Extra delivery delay (nanoseconds) applied uniformly at random up to this
    /// bound; only meaningful to transports that model time (the simulator).
    pub max_extra_delay_ns: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            drop_probability: 0.0,
            tamper_probability: 0.0,
            duplicate_probability: 0.0,
            replay_probability: 0.0,
            max_extra_delay_ns: 0,
        }
    }
}

impl FaultPlan {
    /// A benign network: no faults at all.
    pub fn benign() -> Self {
        FaultPlan::default()
    }

    /// A mildly lossy but honest network (partial synchrony with message loss).
    pub fn lossy(drop_probability: f64) -> Self {
        FaultPlan {
            drop_probability,
            ..FaultPlan::default()
        }
    }

    /// An actively Byzantine network that tampers, replays and duplicates traffic.
    pub fn byzantine() -> Self {
        FaultPlan {
            drop_probability: 0.02,
            tamper_probability: 0.05,
            duplicate_probability: 0.05,
            replay_probability: 0.05,
            max_extra_delay_ns: 200_000,
        }
    }

    /// True if every probability is zero.
    pub fn is_benign(&self) -> bool {
        self.drop_probability == 0.0
            && self.tamper_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.replay_probability == 0.0
    }
}

/// What the adversary decided to do with one message.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultDecision {
    /// Deliver unchanged.
    Deliver,
    /// Drop silently.
    Drop,
    /// Deliver a corrupted copy instead of the original.
    Tamper(WireMessage),
    /// Deliver the original twice.
    Duplicate,
    /// Deliver the original and additionally replay an older captured message.
    Replay(WireMessage),
}

/// Stateful fault injector: samples the [`FaultPlan`] with a deterministic RNG and
/// keeps a bounded capture buffer of past traffic to source replays from.
#[derive(Debug)]
pub struct NetworkFaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    captured: VecDeque<WireMessage>,
    capture_limit: usize,
}

impl NetworkFaultInjector {
    /// Creates an injector with the given plan and RNG seed.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        NetworkFaultInjector {
            plan,
            rng: StdRng::seed_from_u64(seed),
            captured: VecDeque::new(),
            capture_limit: 256,
        }
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Replaces the active plan (e.g. to turn the adversary on mid-experiment).
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// Samples an extra delivery delay in nanoseconds.
    pub fn sample_extra_delay_ns(&mut self) -> u64 {
        if self.plan.max_extra_delay_ns == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.plan.max_extra_delay_ns)
        }
    }

    /// Decides the fate of `message`.
    pub fn decide(&mut self, message: &WireMessage) -> FaultDecision {
        // Capture honest traffic so later replays have material to work with.
        self.captured.push_back(message.clone());
        if self.captured.len() > self.capture_limit {
            self.captured.pop_front();
        }

        if self.plan.is_benign() {
            return FaultDecision::Deliver;
        }
        let roll: f64 = self.rng.gen();
        let mut threshold = self.plan.drop_probability;
        if roll < threshold {
            return FaultDecision::Drop;
        }
        threshold += self.plan.tamper_probability;
        if roll < threshold {
            return FaultDecision::Tamper(self.corrupt(message));
        }
        threshold += self.plan.duplicate_probability;
        if roll < threshold {
            return FaultDecision::Duplicate;
        }
        threshold += self.plan.replay_probability;
        if roll < threshold {
            if let Some(older) = self.pick_replay(message) {
                return FaultDecision::Replay(older);
            }
        }
        FaultDecision::Deliver
    }

    fn corrupt(&mut self, message: &WireMessage) -> WireMessage {
        let mut corrupted = message.clone();
        if corrupted.buf.payload.is_empty() {
            corrupted.buf.payload.push(0xFF);
        } else {
            let idx = self.rng.gen_range(0..corrupted.buf.payload.len());
            corrupted.buf.payload[idx] ^= 0xFF;
        }
        corrupted
    }

    fn pick_replay(&mut self, current: &WireMessage) -> Option<WireMessage> {
        // Prefer an older message on the same channel; a replay on a different
        // channel would be trivially rejected by addressing alone.
        let candidates: Vec<&WireMessage> = self
            .captured
            .iter()
            .filter(|m| {
                m.src == current.src && m.dst == current.dst && m.wire_id != current.wire_id
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..candidates.len());
        Some(candidates[idx].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{MsgBuf, NodeId, ReqType};
    use proptest::prelude::*;

    fn msg(id: u64, body: &[u8]) -> WireMessage {
        WireMessage {
            wire_id: id,
            src: NodeId(1),
            dst: NodeId(2),
            is_response: false,
            buf: MsgBuf::new(ReqType::REPLICATE, body.to_vec()),
        }
    }

    #[test]
    fn benign_plan_always_delivers() {
        let mut injector = NetworkFaultInjector::new(FaultPlan::benign(), 1);
        for i in 0..100 {
            assert_eq!(injector.decide(&msg(i, b"x")), FaultDecision::Deliver);
        }
        assert_eq!(injector.sample_extra_delay_ns(), 0);
    }

    #[test]
    fn full_drop_plan_always_drops() {
        let mut injector = NetworkFaultInjector::new(FaultPlan::lossy(1.0), 1);
        assert_eq!(injector.decide(&msg(1, b"x")), FaultDecision::Drop);
    }

    #[test]
    fn tamper_changes_payload() {
        let plan = FaultPlan {
            tamper_probability: 1.0,
            ..FaultPlan::default()
        };
        let mut injector = NetworkFaultInjector::new(plan, 2);
        match injector.decide(&msg(1, b"payload")) {
            FaultDecision::Tamper(corrupted) => assert_ne!(corrupted.buf.payload, b"payload"),
            other => panic!("expected Tamper, got {other:?}"),
        }
        // Tampering an empty payload still produces a non-empty corruption.
        match injector.decide(&msg(2, b"")) {
            FaultDecision::Tamper(corrupted) => assert!(!corrupted.buf.payload.is_empty()),
            other => panic!("expected Tamper, got {other:?}"),
        }
    }

    #[test]
    fn replay_requires_prior_traffic_on_channel() {
        let plan = FaultPlan {
            replay_probability: 1.0,
            ..FaultPlan::default()
        };
        let mut injector = NetworkFaultInjector::new(plan, 2);
        // First message: nothing to replay yet → falls through to Deliver.
        assert_eq!(injector.decide(&msg(1, b"a")), FaultDecision::Deliver);
        // Second message: the first can now be replayed.
        match injector.decide(&msg(2, b"b")) {
            FaultDecision::Replay(older) => assert_eq!(older.buf.payload, b"a"),
            other => panic!("expected Replay, got {other:?}"),
        }
    }

    #[test]
    fn byzantine_plan_mixes_decisions_deterministically() {
        let mut a = NetworkFaultInjector::new(FaultPlan::byzantine(), 42);
        let mut b = NetworkFaultInjector::new(FaultPlan::byzantine(), 42);
        for i in 0..200 {
            assert_eq!(a.decide(&msg(i, b"x")), b.decide(&msg(i, b"x")));
        }
    }

    #[test]
    fn delay_sampling_is_bounded() {
        let plan = FaultPlan {
            max_extra_delay_ns: 1_000,
            ..FaultPlan::default()
        };
        let mut injector = NetworkFaultInjector::new(plan, 5);
        for _ in 0..100 {
            assert!(injector.sample_extra_delay_ns() <= 1_000);
        }
    }

    proptest! {
        #[test]
        fn decisions_cover_only_known_variants(seed in any::<u64>(), n in 1usize..100) {
            let mut injector = NetworkFaultInjector::new(FaultPlan::byzantine(), seed);
            let mut delivered = 0usize;
            for i in 0..n {
                match injector.decide(&msg(i as u64, b"payload")) {
                    FaultDecision::Deliver | FaultDecision::Duplicate => delivered += 1,
                    FaultDecision::Drop => {}
                    FaultDecision::Tamper(m) => prop_assert_eq!(m.wire_id, i as u64),
                    FaultDecision::Replay(older) => prop_assert!(older.wire_id < i as u64),
                }
            }
            // Sanity: the adversary cannot create messages out of thin air.
            prop_assert!(delivered <= n);
        }
    }
}

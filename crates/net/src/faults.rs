//! The Byzantine network adversary.
//!
//! Recipe's fault model places the entire network (and the untrusted host around the
//! enclave) under adversarial control (paper §3.1, fault and threat model): messages
//! may be delayed, dropped, reordered, duplicated, corrupted or replayed. The
//! [`NetworkFaultInjector`] realizes that adversary for both the loopback fabric and
//! the discrete-event simulator; integration tests use it to show that Recipe's
//! authentication and non-equivocation layers neutralize every injected attack.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::types::{NodeId, WireMessage};

/// Probabilities (0.0–1.0) for each adversarial action, evaluated per message.
///
/// Actions are mutually exclusive per message and evaluated in the order
/// drop → tamper → duplicate → replay; anything left over is delivered untouched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability the message is silently dropped.
    pub drop_probability: f64,
    /// Probability the payload is corrupted before delivery.
    pub tamper_probability: f64,
    /// Probability the message is delivered twice.
    pub duplicate_probability: f64,
    /// Probability a previously observed message on the same channel is replayed
    /// alongside this one.
    pub replay_probability: f64,
    /// Extra delivery delay (nanoseconds) applied uniformly at random up to this
    /// bound; only meaningful to transports that model time (the simulator).
    pub max_extra_delay_ns: u64,
    /// How many past messages the injector keeps as replay material. Larger
    /// buffers let the adversary replay older traffic (stressing the
    /// non-equivocation window); replay-heavy scenarios tune this up.
    pub capture_limit: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            drop_probability: 0.0,
            tamper_probability: 0.0,
            duplicate_probability: 0.0,
            replay_probability: 0.0,
            max_extra_delay_ns: 0,
            capture_limit: 256,
        }
    }
}

impl FaultPlan {
    /// A benign network: no faults at all.
    pub fn benign() -> Self {
        FaultPlan::default()
    }

    /// A mildly lossy but honest network (partial synchrony with message loss).
    pub fn lossy(drop_probability: f64) -> Self {
        FaultPlan {
            drop_probability,
            ..FaultPlan::default()
        }
    }

    /// An actively Byzantine network that tampers, replays and duplicates traffic.
    pub fn byzantine() -> Self {
        FaultPlan {
            drop_probability: 0.02,
            tamper_probability: 0.05,
            duplicate_probability: 0.05,
            replay_probability: 0.05,
            max_extra_delay_ns: 200_000,
            ..FaultPlan::default()
        }
    }

    /// True if the plan perturbs nothing: every probability is zero *and* no
    /// extra delay is injected. A delay-only plan reorders traffic, which is
    /// very much a fault to any protocol that cares about timing.
    pub fn is_benign(&self) -> bool {
        !self.has_message_faults() && self.max_extra_delay_ns == 0
    }

    /// True if any per-message adversarial action (drop/tamper/duplicate/
    /// replay) has non-zero probability. Distinct from [`is_benign`]: a
    /// delay-only plan has no message faults but is not benign.
    ///
    /// [`is_benign`]: FaultPlan::is_benign
    pub fn has_message_faults(&self) -> bool {
        self.drop_probability > 0.0
            || self.tamper_probability > 0.0
            || self.duplicate_probability > 0.0
            || self.replay_probability > 0.0
    }
}

/// One scheduled crash (and optional restart) of a node, in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashEntry {
    /// The node that fails.
    pub node: NodeId,
    /// Virtual-clock instant of the crash.
    pub crash_at_ns: u64,
    /// Virtual-clock instant of the restart, or `None` for crash-stop (the
    /// node never returns). Restarts are rollback-protected: the recovering
    /// replica rehydrates only from sealed, counter-verified state.
    pub recover_at_ns: Option<u64>,
}

/// A deterministic, virtual-clock crash schedule: which nodes fail when, and
/// when (if ever) they restart.
///
/// Unlike the probabilistic [`FaultPlan`], the crash schedule is exact — the
/// same plan under the same seed produces a bit-identical run, which is what
/// lets failover experiments live under the replay/regression gates. An empty
/// plan injects nothing and leaves the event stream untouched.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashPlan {
    /// The scheduled crash/recover pairs.
    pub entries: Vec<CrashEntry>,
}

impl CrashPlan {
    /// A plan with no crashes.
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// Adds a crash-stop entry: `node` fails at `crash_at_ns` and never
    /// returns.
    pub fn crash(mut self, node: NodeId, crash_at_ns: u64) -> Self {
        self.entries.push(CrashEntry {
            node,
            crash_at_ns,
            recover_at_ns: None,
        });
        self
    }

    /// Adds a crash-recovery entry: `node` fails at `crash_at_ns` and
    /// restarts (rollback-protected) at `recover_at_ns`.
    ///
    /// # Panics
    /// Panics if `recover_at_ns <= crash_at_ns` — a node cannot restart
    /// before it failed.
    pub fn crash_recover(mut self, node: NodeId, crash_at_ns: u64, recover_at_ns: u64) -> Self {
        assert!(
            recover_at_ns > crash_at_ns,
            "recovery must come after the crash"
        );
        self.entries.push(CrashEntry {
            node,
            crash_at_ns,
            recover_at_ns: Some(recover_at_ns),
        });
        self
    }

    /// True if the plan schedules no crashes at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// What the adversary decided to do with one message.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultDecision {
    /// Deliver unchanged.
    Deliver,
    /// Drop silently.
    Drop,
    /// Deliver a corrupted copy instead of the original.
    Tamper(WireMessage),
    /// Deliver the original twice.
    Duplicate,
    /// Deliver the original and additionally replay an older captured message.
    Replay(WireMessage),
}

/// Stateful fault injector: samples the [`FaultPlan`] with a deterministic RNG and
/// keeps a bounded capture buffer of past traffic to source replays from.
#[derive(Debug)]
pub struct NetworkFaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    captured: VecDeque<WireMessage>,
}

impl NetworkFaultInjector {
    /// Creates an injector with the given plan and RNG seed.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        NetworkFaultInjector {
            plan,
            rng: StdRng::seed_from_u64(seed),
            captured: VecDeque::new(),
        }
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Replaces the active plan (e.g. to turn the adversary on mid-experiment).
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// Samples an extra delivery delay in nanoseconds.
    pub fn sample_extra_delay_ns(&mut self) -> u64 {
        if self.plan.max_extra_delay_ns == 0 {
            0
        } else {
            self.rng.gen_range(0..=self.plan.max_extra_delay_ns)
        }
    }

    /// Decides the fate of `message`.
    pub fn decide(&mut self, message: &WireMessage) -> FaultDecision {
        // Capture honest traffic so later replays have material to work with.
        // The buffer bound is a plan knob: replay-heavy scenarios widen it to
        // reach further into the past.
        self.captured.push_back(message.clone());
        while self.captured.len() > self.plan.capture_limit.max(1) {
            self.captured.pop_front();
        }

        // Fast path keyed on the per-message probabilities specifically (not
        // `is_benign`, which also covers delay): a delay-only plan must not
        // consume a decision roll here, or its delay samples would diverge
        // from the pre-crash-plane RNG sequence.
        if !self.plan.has_message_faults() {
            return FaultDecision::Deliver;
        }
        let roll: f64 = self.rng.gen();
        let mut threshold = self.plan.drop_probability;
        if roll < threshold {
            return FaultDecision::Drop;
        }
        threshold += self.plan.tamper_probability;
        if roll < threshold {
            return FaultDecision::Tamper(self.corrupt(message));
        }
        threshold += self.plan.duplicate_probability;
        if roll < threshold {
            return FaultDecision::Duplicate;
        }
        threshold += self.plan.replay_probability;
        if roll < threshold {
            if let Some(older) = self.pick_replay(message) {
                return FaultDecision::Replay(older);
            }
        }
        FaultDecision::Deliver
    }

    fn corrupt(&mut self, message: &WireMessage) -> WireMessage {
        let mut corrupted = message.clone();
        if corrupted.buf.payload.is_empty() {
            corrupted.buf.payload.push(0xFF);
        } else {
            let idx = self.rng.gen_range(0..corrupted.buf.payload.len());
            corrupted.buf.payload[idx] ^= 0xFF;
        }
        corrupted
    }

    fn pick_replay(&mut self, current: &WireMessage) -> Option<WireMessage> {
        // Prefer an older message on the same channel; a replay on a different
        // channel would be trivially rejected by addressing alone.
        let candidates: Vec<&WireMessage> = self
            .captured
            .iter()
            .filter(|m| {
                m.src == current.src && m.dst == current.dst && m.wire_id != current.wire_id
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..candidates.len());
        Some(candidates[idx].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{MsgBuf, NodeId, ReqType};
    use proptest::prelude::*;

    fn msg(id: u64, body: &[u8]) -> WireMessage {
        WireMessage {
            wire_id: id,
            src: NodeId(1),
            dst: NodeId(2),
            is_response: false,
            buf: MsgBuf::new(ReqType::REPLICATE, body.to_vec()),
        }
    }

    #[test]
    fn benign_plan_always_delivers() {
        let mut injector = NetworkFaultInjector::new(FaultPlan::benign(), 1);
        for i in 0..100 {
            assert_eq!(injector.decide(&msg(i, b"x")), FaultDecision::Deliver);
        }
        assert_eq!(injector.sample_extra_delay_ns(), 0);
    }

    #[test]
    fn full_drop_plan_always_drops() {
        let mut injector = NetworkFaultInjector::new(FaultPlan::lossy(1.0), 1);
        assert_eq!(injector.decide(&msg(1, b"x")), FaultDecision::Drop);
    }

    #[test]
    fn tamper_changes_payload() {
        let plan = FaultPlan {
            tamper_probability: 1.0,
            ..FaultPlan::default()
        };
        let mut injector = NetworkFaultInjector::new(plan, 2);
        match injector.decide(&msg(1, b"payload")) {
            FaultDecision::Tamper(corrupted) => assert_ne!(corrupted.buf.payload, b"payload"),
            other => panic!("expected Tamper, got {other:?}"),
        }
        // Tampering an empty payload still produces a non-empty corruption.
        match injector.decide(&msg(2, b"")) {
            FaultDecision::Tamper(corrupted) => assert!(!corrupted.buf.payload.is_empty()),
            other => panic!("expected Tamper, got {other:?}"),
        }
    }

    #[test]
    fn replay_requires_prior_traffic_on_channel() {
        let plan = FaultPlan {
            replay_probability: 1.0,
            ..FaultPlan::default()
        };
        let mut injector = NetworkFaultInjector::new(plan, 2);
        // First message: nothing to replay yet → falls through to Deliver.
        assert_eq!(injector.decide(&msg(1, b"a")), FaultDecision::Deliver);
        // Second message: the first can now be replayed.
        match injector.decide(&msg(2, b"b")) {
            FaultDecision::Replay(older) => assert_eq!(older.buf.payload, b"a"),
            other => panic!("expected Replay, got {other:?}"),
        }
    }

    #[test]
    fn byzantine_plan_mixes_decisions_deterministically() {
        let mut a = NetworkFaultInjector::new(FaultPlan::byzantine(), 42);
        let mut b = NetworkFaultInjector::new(FaultPlan::byzantine(), 42);
        for i in 0..200 {
            assert_eq!(a.decide(&msg(i, b"x")), b.decide(&msg(i, b"x")));
        }
    }

    #[test]
    fn delay_sampling_is_bounded() {
        let plan = FaultPlan {
            max_extra_delay_ns: 1_000,
            ..FaultPlan::default()
        };
        let mut injector = NetworkFaultInjector::new(plan, 5);
        for _ in 0..100 {
            assert!(injector.sample_extra_delay_ns() <= 1_000);
        }
    }

    #[test]
    fn delay_only_plan_is_not_benign() {
        let plan = FaultPlan {
            max_extra_delay_ns: 1_000,
            ..FaultPlan::default()
        };
        assert!(!plan.is_benign());
        assert!(!plan.has_message_faults());
        assert!(FaultPlan::benign().is_benign());
        assert!(FaultPlan::byzantine().has_message_faults());
    }

    #[test]
    fn capture_limit_bounds_replay_material() {
        // With a capture window of 1 the only replay candidate on the channel
        // is the previous message (the current one is excluded by wire_id).
        let plan = FaultPlan {
            replay_probability: 1.0,
            capture_limit: 1,
            ..FaultPlan::default()
        };
        let mut injector = NetworkFaultInjector::new(plan, 9);
        assert_eq!(injector.decide(&msg(1, b"a")), FaultDecision::Deliver);
        for i in 2..20u64 {
            match injector.decide(&msg(i, format!("m{i}").into_bytes().as_slice())) {
                // The window held only the immediately preceding message.
                FaultDecision::Replay(older) => assert_eq!(older.wire_id, i - 1),
                FaultDecision::Deliver => {}
                other => panic!("expected Replay or Deliver, got {other:?}"),
            }
        }
    }

    #[test]
    fn crash_plan_builders_and_ordering() {
        let plan = CrashPlan::none()
            .crash_recover(NodeId(0), 1_000, 5_000)
            .crash(NodeId(2), 3_000);
        assert!(!plan.is_empty());
        assert_eq!(plan.entries.len(), 2);
        assert_eq!(plan.entries[0].recover_at_ns, Some(5_000));
        assert_eq!(plan.entries[1].recover_at_ns, None);
        assert!(CrashPlan::none().is_empty());
        // Round-trips through serde for scenario files.
        let json = serde_json::to_vec(&plan).unwrap();
        let back: CrashPlan = serde_json::from_slice(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    #[should_panic(expected = "recovery must come after the crash")]
    fn crash_plan_rejects_recovery_before_crash() {
        let _ = CrashPlan::none().crash_recover(NodeId(0), 5_000, 5_000);
    }

    proptest! {
        #[test]
        fn decisions_cover_only_known_variants(seed in any::<u64>(), n in 1usize..100) {
            let mut injector = NetworkFaultInjector::new(FaultPlan::byzantine(), seed);
            let mut delivered = 0usize;
            for i in 0..n {
                match injector.decide(&msg(i as u64, b"payload")) {
                    FaultDecision::Deliver | FaultDecision::Duplicate => delivered += 1,
                    FaultDecision::Drop => {}
                    FaultDecision::Tamper(m) => prop_assert_eq!(m.wire_id, i as u64),
                    FaultDecision::Replay(older) => prop_assert!(older.wire_id < i as u64),
                }
            }
            // Sanity: the adversary cannot create messages out of thin air.
            prop_assert!(delivered <= n);
        }
    }
}

//! The RPC endpoint (`RPCobj`).
//!
//! Table 3's Network and Initialization APIs map onto this type:
//!
//! | paper API            | here                                          |
//! |-----------------------|----------------------------------------------|
//! | `create_rpc(app_ctx)` | [`RpcEndpoint::new`]                          |
//! | `reg_hdlr(&func)`     | [`RpcEndpoint::reg_hdlr`]                     |
//! | `send(&msg_buf)`      | [`RpcEndpoint::send`]                         |
//! | `respond(&msg_buf)`   | [`RpcEndpoint::respond`]                      |
//! | `poll()`              | [`RpcEndpoint::poll`]                         |
//!
//! An endpoint owns a private TX and RX ring (bounded queues, like eRPC's per-session
//! rings). `send`/`respond` only enqueue; `poll` flushes the TX ring into the fabric
//! and dispatches everything in the RX ring to the registered handlers. Handlers may
//! return response buffers, which are sent within the same poll — that is how ACKs in
//! Listing 1 (`conn.respond(shield_msg(ACK_repl))`) flow back to the coordinator.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::NetError;
use crate::fabric::Fabric;
use crate::types::{MsgBuf, NodeId, ReqType, WireMessage};

/// A request handler: takes the received wire message, returns zero or more response
/// buffers addressed back to the sender.
pub type RequestHandler = Box<dyn FnMut(&WireMessage) -> Vec<MsgBuf> + Send>;

/// Configuration for an RPC endpoint (the paper's "application context": NIC port,
/// queue sizes, …).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RpcEndpointConfig {
    /// The node this endpoint belongs to.
    pub node: NodeId,
    /// Capacity of the transmission ring.
    pub tx_ring_capacity: usize,
    /// Capacity of the reception ring.
    pub rx_ring_capacity: usize,
}

impl RpcEndpointConfig {
    /// A reasonable default configuration for `node` (256-entry rings, matching
    /// eRPC's default session credits order of magnitude).
    pub fn new(node: NodeId) -> Self {
        RpcEndpointConfig {
            node,
            tx_ring_capacity: 256,
            rx_ring_capacity: 256,
        }
    }
}

/// Statistics returned by one [`RpcEndpoint::poll`] call and accumulated over the
/// endpoint's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollStats {
    /// Messages flushed from the TX ring to the fabric.
    pub sent: u64,
    /// Messages taken from the RX ring and dispatched.
    pub received: u64,
    /// Responses produced by handlers during this poll.
    pub responses_generated: u64,
    /// Messages dropped because no handler was registered for their request type.
    pub unhandled: u64,
}

impl PollStats {
    fn absorb(&mut self, other: PollStats) {
        self.sent += other.sent;
        self.received += other.received;
        self.responses_generated += other.responses_generated;
        self.unhandled += other.unhandled;
    }
}

/// A per-node RPC endpoint with private TX/RX rings and a handler registry.
pub struct RpcEndpoint {
    config: RpcEndpointConfig,
    handlers: HashMap<ReqType, RequestHandler>,
    tx_ring: VecDeque<WireMessage>,
    rx_ring: VecDeque<WireMessage>,
    connected: HashSet<NodeId>,
    lifetime_stats: PollStats,
}

impl RpcEndpoint {
    /// Creates an endpoint (the `create_rpc()` call).
    pub fn new(config: RpcEndpointConfig) -> Self {
        RpcEndpoint {
            config,
            handlers: HashMap::new(),
            tx_ring: VecDeque::new(),
            rx_ring: VecDeque::new(),
            connected: HashSet::new(),
            lifetime_stats: PollStats::default(),
        }
    }

    /// The node that owns this endpoint.
    pub fn node(&self) -> NodeId {
        self.config.node
    }

    /// Registers the handler for a request type (`reg_hdlr`). Replaces any previous
    /// handler for the same type.
    pub fn reg_hdlr(&mut self, req_type: ReqType, handler: RequestHandler) {
        self.handlers.insert(req_type, handler);
    }

    /// Establishes a connection to `peer` (the `wait_until_connected` step of
    /// Listing 1). On the simulated fabric connection establishment always succeeds
    /// immediately; the call exists so the programming model matches the paper.
    pub fn connect(&mut self, peer: NodeId) {
        self.connected.insert(peer);
    }

    /// True if a connection to `peer` has been established.
    pub fn is_connected(&self, peer: NodeId) -> bool {
        self.connected.contains(&peer)
    }

    /// Peers this endpoint is connected to, in sorted order.
    pub fn peers(&self) -> Vec<NodeId> {
        let mut peers: Vec<NodeId> = self.connected.iter().copied().collect();
        peers.sort();
        peers
    }

    /// Enqueues a request to `dst` on the TX ring (`send`).
    pub fn send(&mut self, dst: NodeId, buf: MsgBuf) -> Result<(), NetError> {
        self.enqueue_tx(dst, buf, false)
    }

    /// Enqueues a response to `dst` on the TX ring (`respond`).
    pub fn respond(&mut self, dst: NodeId, buf: MsgBuf) -> Result<(), NetError> {
        self.enqueue_tx(dst, buf, true)
    }

    fn enqueue_tx(&mut self, dst: NodeId, buf: MsgBuf, is_response: bool) -> Result<(), NetError> {
        if !self.connected.contains(&dst) {
            return Err(NetError::NotConnected { peer: dst });
        }
        if self.tx_ring.len() >= self.config.tx_ring_capacity {
            return Err(NetError::TxRingFull {
                capacity: self.config.tx_ring_capacity,
            });
        }
        self.tx_ring.push_back(WireMessage {
            wire_id: 0, // assigned by the fabric
            src: self.config.node,
            dst,
            is_response,
            buf,
        });
        Ok(())
    }

    /// Places an incoming wire message on the RX ring. Called by whatever pumps the
    /// fabric (tests, examples, or the simulator).
    pub fn enqueue_incoming(&mut self, message: WireMessage) -> Result<(), NetError> {
        if self.rx_ring.len() >= self.config.rx_ring_capacity {
            return Err(NetError::RxRingFull {
                capacity: self.config.rx_ring_capacity,
            });
        }
        self.rx_ring.push_back(message);
        Ok(())
    }

    /// Number of messages waiting in the TX ring.
    pub fn tx_pending(&self) -> usize {
        self.tx_ring.len()
    }

    /// Number of messages waiting in the RX ring.
    pub fn rx_pending(&self) -> usize {
        self.rx_ring.len()
    }

    /// Lifetime statistics across all polls.
    pub fn stats(&self) -> PollStats {
        self.lifetime_stats
    }

    /// Polls the endpoint: dispatches every message in the RX ring to its handler,
    /// queues any responses the handlers produce, then flushes the entire TX ring to
    /// `fabric`. Returns statistics for this poll.
    pub fn poll<F: Fabric>(&mut self, fabric: &mut F) -> PollStats {
        let mut stats = PollStats::default();

        // Dispatch the RX ring. Responses produced by handlers go onto the TX ring so
        // they are flushed in the same poll (mirrors eRPC's run_event_loop_once).
        let incoming: Vec<WireMessage> = self.rx_ring.drain(..).collect();
        for message in incoming {
            stats.received += 1;
            match self.handlers.get_mut(&message.buf.req_type) {
                Some(handler) => {
                    let responses = handler(&message);
                    for response in responses {
                        stats.responses_generated += 1;
                        // Responses bypass the connection check: we can always answer
                        // a peer we just heard from.
                        self.connected.insert(message.src);
                        let _ = self.respond(message.src, response);
                    }
                }
                None => {
                    stats.unhandled += 1;
                }
            }
        }

        // Flush TX.
        for message in self.tx_ring.drain(..) {
            stats.sent += 1;
            fabric.submit(message);
        }

        self.lifetime_stats.absorb(stats);
        stats
    }
}

impl fmt::Debug for RpcEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RpcEndpoint")
            .field("node", &self.config.node)
            .field("handlers", &self.handlers.len())
            .field("tx_pending", &self.tx_ring.len())
            .field("rx_pending", &self.rx_ring.len())
            .field("connected", &self.connected.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::LoopbackFabric;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn endpoint(node: u64) -> RpcEndpoint {
        RpcEndpoint::new(RpcEndpointConfig::new(NodeId(node)))
    }

    #[test]
    fn send_requires_connection() {
        let mut ep = endpoint(1);
        let err = ep.send(NodeId(2), MsgBuf::new(ReqType::CLIENT, vec![1]));
        assert_eq!(err, Err(NetError::NotConnected { peer: NodeId(2) }));
        ep.connect(NodeId(2));
        assert!(ep
            .send(NodeId(2), MsgBuf::new(ReqType::CLIENT, vec![1]))
            .is_ok());
        assert_eq!(ep.tx_pending(), 1);
        assert!(ep.is_connected(NodeId(2)));
        assert_eq!(ep.peers(), vec![NodeId(2)]);
    }

    #[test]
    fn tx_ring_capacity_is_enforced() {
        let mut ep = RpcEndpoint::new(RpcEndpointConfig {
            node: NodeId(1),
            tx_ring_capacity: 2,
            rx_ring_capacity: 2,
        });
        ep.connect(NodeId(2));
        ep.send(NodeId(2), MsgBuf::new(ReqType::CLIENT, vec![]))
            .unwrap();
        ep.send(NodeId(2), MsgBuf::new(ReqType::CLIENT, vec![]))
            .unwrap();
        assert_eq!(
            ep.send(NodeId(2), MsgBuf::new(ReqType::CLIENT, vec![])),
            Err(NetError::TxRingFull { capacity: 2 })
        );
    }

    #[test]
    fn rx_ring_capacity_is_enforced() {
        let mut ep = RpcEndpoint::new(RpcEndpointConfig {
            node: NodeId(1),
            tx_ring_capacity: 2,
            rx_ring_capacity: 1,
        });
        let msg = WireMessage {
            wire_id: 0,
            src: NodeId(2),
            dst: NodeId(1),
            is_response: false,
            buf: MsgBuf::new(ReqType::CLIENT, vec![]),
        };
        ep.enqueue_incoming(msg.clone()).unwrap();
        assert_eq!(
            ep.enqueue_incoming(msg),
            Err(NetError::RxRingFull { capacity: 1 })
        );
    }

    #[test]
    fn poll_flushes_tx_to_fabric() {
        let mut ep = endpoint(1);
        let mut fabric = LoopbackFabric::new();
        ep.connect(NodeId(2));
        ep.send(NodeId(2), MsgBuf::new(ReqType::REPLICATE, b"r1".to_vec()))
            .unwrap();
        ep.send(NodeId(2), MsgBuf::new(ReqType::REPLICATE, b"r2".to_vec()))
            .unwrap();
        let stats = ep.poll(&mut fabric);
        assert_eq!(stats.sent, 2);
        assert_eq!(ep.tx_pending(), 0);
        assert_eq!(fabric.pending(NodeId(2)), 2);
    }

    #[test]
    fn poll_dispatches_rx_to_registered_handler() {
        let mut ep = endpoint(2);
        let mut fabric = LoopbackFabric::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits_clone = hits.clone();
        ep.reg_hdlr(
            ReqType::REPLICATE,
            Box::new(move |msg| {
                hits_clone.fetch_add(1, Ordering::SeqCst);
                vec![MsgBuf::new(ReqType::ACK, msg.buf.payload.clone())]
            }),
        );
        ep.enqueue_incoming(WireMessage {
            wire_id: 7,
            src: NodeId(1),
            dst: NodeId(2),
            is_response: false,
            buf: MsgBuf::new(ReqType::REPLICATE, b"kv".to_vec()),
        })
        .unwrap();

        let stats = ep.poll(&mut fabric);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(stats.received, 1);
        assert_eq!(stats.responses_generated, 1);
        // The ACK went out in the same poll, addressed back to the sender.
        let delivered = fabric.drain(NodeId(1));
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].buf.req_type, ReqType::ACK);
        assert!(delivered[0].is_response);
        assert_eq!(delivered[0].buf.payload, b"kv");
    }

    #[test]
    fn unhandled_request_types_are_counted_and_dropped() {
        let mut ep = endpoint(2);
        let mut fabric = LoopbackFabric::new();
        ep.enqueue_incoming(WireMessage {
            wire_id: 1,
            src: NodeId(1),
            dst: NodeId(2),
            is_response: false,
            buf: MsgBuf::new(ReqType::VIEW_CHANGE, vec![]),
        })
        .unwrap();
        let stats = ep.poll(&mut fabric);
        assert_eq!(stats.unhandled, 1);
        assert_eq!(stats.responses_generated, 0);
        assert_eq!(fabric.submitted(), 0);
    }

    #[test]
    fn lifetime_stats_accumulate() {
        let mut ep = endpoint(1);
        let mut fabric = LoopbackFabric::new();
        ep.connect(NodeId(2));
        for _ in 0..3 {
            ep.send(NodeId(2), MsgBuf::new(ReqType::CLIENT, vec![]))
                .unwrap();
            ep.poll(&mut fabric);
        }
        assert_eq!(ep.stats().sent, 3);
    }

    #[test]
    fn end_to_end_request_response_over_loopback() {
        // Client endpoint 1 sends a request to server endpoint 2; the server's
        // handler produces an ACK which flows back to 1.
        let mut client = endpoint(1);
        let mut server = endpoint(2);
        let mut fabric = LoopbackFabric::new();
        client.connect(NodeId(2));
        server.reg_hdlr(
            ReqType::CLIENT,
            Box::new(|msg| vec![MsgBuf::new(ReqType::ACK, msg.buf.payload.clone())]),
        );

        client
            .send(NodeId(2), MsgBuf::new(ReqType::CLIENT, b"put k v".to_vec()))
            .unwrap();
        client.poll(&mut fabric);
        for msg in fabric.drain(NodeId(2)) {
            server.enqueue_incoming(msg).unwrap();
        }
        server.poll(&mut fabric);
        let responses = fabric.drain(NodeId(1));
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].buf.req_type, ReqType::ACK);
        assert_eq!(responses[0].buf.payload, b"put k v");
    }
}

//! Direct-I/O style RPC stack for Recipe.
//!
//! The paper builds its communication layer on eRPC over RDMA/DPDK, because kernel
//! sockets are prohibitively expensive inside TEEs (paper §A.2 Q1, §A.3 "Recipe
//! networking"). This crate reproduces the *programming model* of that stack and the
//! cost structure of its alternatives:
//!
//! * [`endpoint::RpcEndpoint`] — the per-thread `RPCobj`: registered request
//!   handlers, private TX/RX ring queues, asynchronous `send` / `respond` / `poll`
//!   operations (Table 3, Network API).
//! * [`types`] — message framing: [`types::MsgBuf`], [`types::WireMessage`],
//!   request types, node and channel identifiers.
//! * [`fabric`] — the transport interface that moves wire messages between
//!   endpoints. The in-process [`fabric::LoopbackFabric`] delivers synchronously for
//!   unit tests and examples; the discrete-event simulator in `recipe-sim` provides
//!   the full Byzantine-network implementation.
//! * [`faults`] — the Byzantine network adversary: drop, duplicate, reorder, delay,
//!   tamper and replay injection applied to wire messages.
//! * [`cost`] — the calibrated transport cost model (kernel sockets vs direct I/O,
//!   native vs TEE) used to regenerate Figure 6b and to drive the simulator's
//!   virtual clock.
//!
//! No real NIC is touched: per DESIGN.md, RDMA/DPDK hardware is replaced by an
//! in-memory fabric plus a cost model, while the handler/queue/polling code paths the
//! protocols exercise are real.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod endpoint;
pub mod error;
pub mod fabric;
pub mod faults;
pub mod types;

pub use cost::{ExecMode, NetCostModel, Transport};
pub use endpoint::{PollStats, RequestHandler, RpcEndpoint, RpcEndpointConfig};
pub use error::NetError;
pub use fabric::{Fabric, LoopbackFabric};
pub use faults::{CrashEntry, CrashPlan, FaultDecision, FaultPlan, NetworkFaultInjector};
pub use types::{ChannelId, MsgBuf, NodeId, ReqType, WireMessage};

//! Error type for the networking stack.

use std::fmt;

use crate::types::{NodeId, ReqType};

/// Errors produced by the RPC endpoint and fabric layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The TX ring is full; the caller must `poll()` before enqueueing more.
    TxRingFull {
        /// Configured ring capacity.
        capacity: usize,
    },
    /// The RX ring is full; incoming messages are being dropped (back-pressure).
    RxRingFull {
        /// Configured ring capacity.
        capacity: usize,
    },
    /// No handler was registered for the request type.
    NoHandler {
        /// The unhandled request type.
        req_type: ReqType,
    },
    /// The destination node is not connected to the fabric.
    UnknownDestination {
        /// The unreachable node.
        node: NodeId,
    },
    /// A connection to the peer has not been established yet.
    NotConnected {
        /// The peer the caller attempted to reach.
        peer: NodeId,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::TxRingFull { capacity } => {
                write!(f, "TX ring full (capacity {capacity}); poll() to drain")
            }
            NetError::RxRingFull { capacity } => {
                write!(f, "RX ring full (capacity {capacity}); receiver overloaded")
            }
            NetError::NoHandler { req_type } => {
                write!(f, "no handler registered for request type {req_type:?}")
            }
            NetError::UnknownDestination { node } => {
                write!(f, "destination {node} is not attached to the fabric")
            }
            NetError::NotConnected { peer } => {
                write!(f, "no established connection to peer {peer}")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        assert!(NetError::TxRingFull { capacity: 8 }
            .to_string()
            .contains('8'));
        assert!(NetError::UnknownDestination { node: NodeId(3) }
            .to_string()
            .contains("n3"));
        assert!(NetError::NoHandler {
            req_type: ReqType::ACK
        }
        .to_string()
        .contains("ACK"));
    }
}

//! Fabric: the transport that moves wire messages between endpoints.
//!
//! The fabric interface decouples the RPC endpoint programming model from how
//! messages physically move. Two implementations exist:
//!
//! * [`LoopbackFabric`] (here) — synchronous in-process delivery with optional fault
//!   injection; used by unit tests, examples and the Figure 6b microbenchmark.
//! * `recipe_sim::SimNetwork` — the full discrete-event Byzantine network with
//!   virtual time, used by all protocol experiments.

use std::collections::{HashMap, VecDeque};

use crate::faults::{FaultDecision, NetworkFaultInjector};
use crate::types::{NodeId, WireMessage};

/// A transport capable of accepting outbound messages from an endpoint.
pub trait Fabric {
    /// Submits a message for delivery. Implementations may drop, delay, duplicate or
    /// corrupt it according to their fault model.
    fn submit(&mut self, message: WireMessage);
}

/// An in-process fabric with immediate (but explicitly pumped) delivery.
///
/// Messages submitted by any endpoint accumulate in per-destination inboxes; the test
/// or example drains them with [`LoopbackFabric::drain`] and feeds them to the
/// destination endpoint's RX ring. An optional [`NetworkFaultInjector`] is applied at
/// submission time.
#[derive(Default)]
pub struct LoopbackFabric {
    inboxes: HashMap<NodeId, VecDeque<WireMessage>>,
    injector: Option<NetworkFaultInjector>,
    next_wire_id: u64,
    submitted: u64,
    dropped: u64,
    tampered: u64,
    duplicated: u64,
}

impl LoopbackFabric {
    /// Creates a fault-free fabric.
    pub fn new() -> Self {
        LoopbackFabric::default()
    }

    /// Creates a fabric whose deliveries are filtered through `injector`.
    pub fn with_faults(injector: NetworkFaultInjector) -> Self {
        LoopbackFabric {
            injector: Some(injector),
            ..LoopbackFabric::default()
        }
    }

    /// Registers a node so it can receive messages.
    pub fn attach(&mut self, node: NodeId) {
        self.inboxes.entry(node).or_default();
    }

    /// Drains all messages queued for `node`, in delivery order.
    pub fn drain(&mut self, node: NodeId) -> Vec<WireMessage> {
        self.inboxes
            .get_mut(&node)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default()
    }

    /// Number of messages waiting for `node`.
    pub fn pending(&self, node: NodeId) -> usize {
        self.inboxes.get(&node).map(VecDeque::len).unwrap_or(0)
    }

    /// Total messages submitted since creation.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Messages dropped by fault injection.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages tampered with by fault injection.
    pub fn tampered(&self) -> u64 {
        self.tampered
    }

    /// Messages duplicated by fault injection.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    fn deliver(&mut self, message: WireMessage) {
        self.inboxes
            .entry(message.dst)
            .or_default()
            .push_back(message);
    }
}

impl Fabric for LoopbackFabric {
    fn submit(&mut self, mut message: WireMessage) {
        self.submitted += 1;
        message.wire_id = self.next_wire_id;
        self.next_wire_id += 1;

        let decision = match &mut self.injector {
            Some(injector) => injector.decide(&message),
            None => FaultDecision::Deliver,
        };
        match decision {
            FaultDecision::Deliver => self.deliver(message),
            FaultDecision::Drop => {
                self.dropped += 1;
            }
            FaultDecision::Tamper(corrupted) => {
                self.tampered += 1;
                self.deliver(corrupted);
            }
            FaultDecision::Duplicate => {
                self.duplicated += 1;
                self.deliver(message.clone());
                self.deliver(message);
            }
            FaultDecision::Replay(older) => {
                // Deliver the fresh message and then re-deliver a previously seen one
                // (the adversary replays authenticated but stale traffic).
                self.deliver(message);
                self.deliver(older);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::types::{MsgBuf, ReqType};

    fn msg(src: u64, dst: u64, body: &[u8]) -> WireMessage {
        WireMessage {
            wire_id: 0,
            src: NodeId(src),
            dst: NodeId(dst),
            is_response: false,
            buf: MsgBuf::new(ReqType::REPLICATE, body.to_vec()),
        }
    }

    #[test]
    fn messages_reach_their_destination_in_order() {
        let mut fabric = LoopbackFabric::new();
        fabric.attach(NodeId(2));
        fabric.submit(msg(1, 2, b"a"));
        fabric.submit(msg(1, 2, b"b"));
        fabric.submit(msg(1, 3, b"c"));
        assert_eq!(fabric.pending(NodeId(2)), 2);
        let delivered = fabric.drain(NodeId(2));
        assert_eq!(delivered.len(), 2);
        assert_eq!(delivered[0].buf.payload, b"a");
        assert_eq!(delivered[1].buf.payload, b"b");
        assert!(delivered[0].wire_id < delivered[1].wire_id);
        assert_eq!(fabric.drain(NodeId(3)).len(), 1);
        assert_eq!(fabric.pending(NodeId(2)), 0);
        assert_eq!(fabric.submitted(), 3);
    }

    #[test]
    fn drain_unknown_node_is_empty() {
        let mut fabric = LoopbackFabric::new();
        assert!(fabric.drain(NodeId(9)).is_empty());
        assert_eq!(fabric.pending(NodeId(9)), 0);
    }

    #[test]
    fn drop_all_faults_suppress_delivery() {
        let plan = FaultPlan {
            drop_probability: 1.0,
            ..FaultPlan::default()
        };
        let mut fabric = LoopbackFabric::with_faults(NetworkFaultInjector::new(plan, 1));
        fabric.submit(msg(1, 2, b"a"));
        assert_eq!(fabric.pending(NodeId(2)), 0);
        assert_eq!(fabric.dropped(), 1);
    }

    #[test]
    fn tampering_modifies_payload_but_still_delivers() {
        let plan = FaultPlan {
            tamper_probability: 1.0,
            ..FaultPlan::default()
        };
        let mut fabric = LoopbackFabric::with_faults(NetworkFaultInjector::new(plan, 7));
        fabric.submit(msg(1, 2, b"original payload"));
        let delivered = fabric.drain(NodeId(2));
        assert_eq!(delivered.len(), 1);
        assert_ne!(delivered[0].buf.payload, b"original payload");
        assert_eq!(fabric.tampered(), 1);
    }

    #[test]
    fn duplication_delivers_twice() {
        let plan = FaultPlan {
            duplicate_probability: 1.0,
            ..FaultPlan::default()
        };
        let mut fabric = LoopbackFabric::with_faults(NetworkFaultInjector::new(plan, 3));
        fabric.submit(msg(1, 2, b"dup"));
        assert_eq!(fabric.drain(NodeId(2)).len(), 2);
        assert_eq!(fabric.duplicated(), 1);
    }

    #[test]
    fn replay_redelivers_an_older_message() {
        let plan = FaultPlan {
            replay_probability: 1.0,
            ..FaultPlan::default()
        };
        let mut fabric = LoopbackFabric::with_faults(NetworkFaultInjector::new(plan, 3));
        fabric.submit(msg(1, 2, b"first"));
        fabric.submit(msg(1, 2, b"second"));
        let delivered = fabric.drain(NodeId(2));
        // First submission has nothing to replay; second submission replays "first".
        assert!(delivered.len() >= 3);
        let replays = delivered
            .iter()
            .filter(|m| m.buf.payload == b"first")
            .count();
        assert!(replays >= 2, "expected the first message to be replayed");
    }
}

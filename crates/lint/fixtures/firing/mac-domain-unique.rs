// expect-finding: mac-domain-unique
//! Two wire formats sharing one MAC domain: a frame sealed as one kind
//! verifies as the other, so the formats are confusable.
pub const REQ_MAC_DOMAIN: &str = "recipe.fixture_txn.v1";
pub const RESP_MAC_DOMAIN: &str = "recipe.fixture_txn.v1";

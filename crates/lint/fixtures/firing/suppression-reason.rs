// expect-finding: suppression-reason
//! A suppression without a reason: the allow hides a finding while
//! explaining nothing, so it is itself a finding (and suppresses nothing).
pub fn head(xs: &[u64]) -> u64 {
    // recipe-lint: allow(unwrap-in-lib)
    *xs.first().unwrap()
}

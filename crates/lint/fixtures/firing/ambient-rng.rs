// expect-finding: ambient-rng
//! Draws from the ambient OS-seeded RNG: not reproducible from the run seed.
pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..100)
}

// expect-finding: wall-clock
//! Reads the OS wall clock in deterministic core code: two replays of the
//! same seed observe different times.
use std::time::Instant;

pub fn stamp_ns() -> u128 {
    Instant::now().elapsed().as_nanos()
}

// expect-finding: float-arith
//! Floating point on a state path in core code.
pub fn mean_latency(total_ns: u64, samples: u64) -> f64 {
    total_ns as f64 / samples as f64
}

// expect-finding: raw-ctx-send
//! Raw transmission outside the allowlisted shield modules: the frame skips
//! AuthLayer/ProtocolShield and rides the wire unauthenticated.
pub fn gossip(ctx: &mut Ctx, peer: NodeId, frame: Vec<u8>) {
    ctx.send(peer, frame);
}

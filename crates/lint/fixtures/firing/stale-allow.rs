// expect-finding: stale-allow
//! A suppression outliving the finding it excused: the unwrap it was
//! written for has been refactored into `?`, so the allow now silences
//! nothing and must be deleted.
pub fn head(xs: &[u64]) -> Option<u64> {
    // recipe-lint: allow(unwrap-in-lib, reason = "callers check emptiness before indexing")
    xs.first().copied()
}

// expect-finding: hash-iteration
//! Iterates a hash-ordered container in core code: visit order varies
//! across processes, so any order-sensitive fold diverges.
use std::collections::HashMap;

pub struct Routing {
    peers: HashMap<u64, u64>,
}

impl Routing {
    pub fn checksum(&self) -> u64 {
        let mut acc = 0u64;
        for (id, weight) in self.peers.iter() {
            acc = acc.wrapping_mul(31).wrapping_add(id ^ weight);
        }
        acc
    }
}

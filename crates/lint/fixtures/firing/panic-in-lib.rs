// expect-finding: panic-in-lib
//! A panic on a reachable library path.
pub fn parse_kind(kind: u8) -> Kind {
    match kind {
        0 => Kind::Read,
        1 => Kind::Write,
        other => panic!("unknown kind {other}"),
    }
}

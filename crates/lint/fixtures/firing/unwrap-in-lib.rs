// expect-finding: unwrap-in-lib
//! A bare unwrap in library code: the panic carries no invariant.
pub fn head(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

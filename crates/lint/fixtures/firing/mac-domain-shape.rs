// expect-finding: mac-domain-shape
//! A wire MAC domain that does not follow `recipe.<kind>.v<N>`: no version
//! to bump, and greppability of the wire-format inventory is lost.
pub const LEGACY_MAC_DOMAIN: &str = "recipe-legacy-frames";

// expect-finding: thread-spawn
//! Spawns an OS thread in core code: the simulator no longer owns the
//! interleaving, so replays diverge.
pub fn fan_out(work: Vec<u64>) {
    std::thread::spawn(move || {
        let _ = work.len();
    });
}

// expect-finding: print-in-lib
//! Writes to stdout from library code: output the caller cannot capture,
//! redirect or silence.
pub fn report(committed: u64) {
    println!("committed {committed} ops");
}

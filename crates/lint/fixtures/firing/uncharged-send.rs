// expect-finding: uncharged-send
//! Seals a frame on an audited send path without charging the work: the
//! virtual clock undercounts and the run's timing is no longer honest.
pub fn push_state(channel: &mut TxnChannel, body: &TxnBody) -> Vec<u8> {
    channel.seal_request(body)
}

//! The sanctioned form: an ordered container, identical visit order always.
use std::collections::BTreeMap;

pub struct Routing {
    peers: BTreeMap<u64, u64>,
}

impl Routing {
    pub fn checksum(&self) -> u64 {
        let mut acc = 0u64;
        for (id, weight) in self.peers.iter() {
            acc = acc.wrapping_mul(31).wrapping_add(id ^ weight);
        }
        acc
    }
}

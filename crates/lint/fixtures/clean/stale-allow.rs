//! The sanctioned form: every suppression still silences a live finding.
pub fn head(xs: &[u64]) -> u64 {
    // recipe-lint: allow(unwrap-in-lib, reason = "callers check emptiness before indexing")
    *xs.first().unwrap()
}

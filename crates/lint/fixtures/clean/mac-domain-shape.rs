//! The sanctioned shape: `recipe.<kind>.v<N>`.
pub const FIXTURE_MAC_DOMAIN: &str = "recipe.fixture_frame.v1";

//! The sanctioned form: surface the absence to the caller.
pub fn head(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}

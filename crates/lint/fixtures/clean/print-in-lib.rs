//! The sanctioned form: render into a buffer the caller owns.
pub fn report(committed: u64) -> String {
    format!("committed {committed} ops")
}

//! The sanctioned form: integral arithmetic end to end.
pub fn mean_latency(total_ns: u64, samples: u64) -> u64 {
    total_ns / samples.max(1)
}

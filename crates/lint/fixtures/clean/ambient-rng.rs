//! The sanctioned form: every draw comes from the run's seeded RNG.
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn jitter(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

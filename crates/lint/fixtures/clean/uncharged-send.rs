//! The sanctioned form: the seal and its clock charge travel together.
pub fn push_state(channel: &mut TxnChannel, clock: &mut Meter, body: &TxnBody) -> Vec<u8> {
    let wire = channel.seal_request(body);
    clock.charge_seal(wire.len() as u64);
    wire
}

//! The sanctioned form: disjoint domains per wire format.
pub const REQ_MAC_DOMAIN: &str = "recipe.fixture_req.v1";
pub const RESP_MAC_DOMAIN: &str = "recipe.fixture_resp.v1";

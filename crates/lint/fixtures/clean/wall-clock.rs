//! The sanctioned form: time is a parameter sourced from the virtual clock.
pub fn stamp_ns(virtual_now_ns: u64) -> u64 {
    virtual_now_ns
}

//! The sanctioned form: the shield seals the frame, then transmits.
pub fn gossip(shield: &mut ProtocolShield, ctx: &mut Ctx, peer: NodeId, frame: Vec<u8>) {
    shield.seal_and_send(ctx, peer, frame);
}

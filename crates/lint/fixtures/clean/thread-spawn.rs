//! The sanctioned form: concurrency is events in the simulator's queue.
pub fn fan_out(queue: &mut Vec<u64>, at_ns: u64) {
    queue.push(at_ns);
}

//! The sanctioned form: unknown input is an error, not a crash.
pub fn parse_kind(kind: u8) -> Result<Kind, UnknownKind> {
    match kind {
        0 => Ok(Kind::Read),
        1 => Ok(Kind::Write),
        other => Err(UnknownKind(other)),
    }
}

//! Fixture corpus contract, mirroring `scenarios/malformed/`: every rule has
//! one firing fixture (first line `// expect-finding: <rule>`) that must
//! produce that finding, and one clean fixture showing the sanctioned form
//! that must produce none. A rule that is disabled — or whose matcher
//! regresses — fails its firing fixture here.
//!
//! Fixtures are lexed, never compiled, and live under `crates/lint/fixtures/`
//! (a path the analyzer itself classifies as test collateral), so each file
//! is linted under a synthetic workspace path that puts it in the right
//! rule scope: determinism fixtures in a core crate, the uncharged-send
//! fixture on an audited send path, the rest in ordinary library code.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use recipe_lint::{lint_files, rule_ids, Config, LintReport};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// The scope each rule's fixtures are linted under.
fn synthetic_path(rule: &str) -> &'static str {
    match rule {
        "wall-clock" | "thread-spawn" | "ambient-rng" | "hash-iteration" | "float-arith" => {
            "crates/core/src/fixture.rs"
        }
        "uncharged-send" => "crates/shard/src/fixture.rs",
        _ => "crates/kv/src/fixture.rs",
    }
}

fn fixture_config() -> Config {
    Config {
        core_paths: vec!["crates/core/src".into()],
        send_allowed: vec!["crates/protocols/src".into()],
        charged_paths: vec!["crates/shard/src".into()],
        ..Config::default()
    }
}

fn lint_fixture(dir: &str, rule: &str) -> (String, LintReport) {
    let path = fixtures_dir().join(dir).join(format!("{rule}.rs"));
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    let report = lint_files(
        &[(synthetic_path(rule).to_string(), source.clone())],
        &fixture_config(),
    );
    (source, report)
}

#[test]
fn corpus_covers_every_rule() {
    for dir in ["firing", "clean"] {
        let have: BTreeSet<String> = std::fs::read_dir(fixtures_dir().join(dir))
            .expect("fixture dir")
            .map(|e| {
                e.expect("fixture entry")
                    .file_name()
                    .to_string_lossy()
                    .trim_end_matches(".rs")
                    .to_string()
            })
            .collect();
        let want: BTreeSet<String> = rule_ids().iter().map(|r| r.to_string()).collect();
        assert_eq!(
            have, want,
            "{dir}/ fixtures out of sync with the rule catalogue"
        );
    }
}

#[test]
fn firing_fixtures_fire_their_declared_rule() {
    for rule in rule_ids() {
        let (source, report) = lint_fixture("firing", rule);
        let contract = source.lines().next().unwrap_or_default();
        assert_eq!(
            contract,
            format!("// expect-finding: {rule}"),
            "firing/{rule}.rs first-line contract"
        );
        assert!(
            report.findings.iter().any(|f| f.rule == *rule),
            "firing/{rule}.rs produced no `{rule}` finding; got: {:?}",
            report.findings
        );
    }
}

#[test]
fn clean_fixtures_produce_no_findings() {
    for rule in rule_ids() {
        let (_, report) = lint_fixture("clean", rule);
        assert!(
            report.is_clean(),
            "clean/{rule}.rs is not clean: {:?}",
            report.findings
        );
    }
}

/// The acceptance scenario spelled out in the issue: a seeded duplicate
/// MAC domain split across two files is caught by the cross-file pass.
#[test]
fn seeded_cross_file_domain_duplicate_is_caught() {
    let report = lint_files(
        &[
            (
                "crates/kv/src/a.rs".into(),
                "pub const A_MAC_DOMAIN: &str = \"recipe.seeded_dup.v1\";".into(),
            ),
            (
                "crates/kv/src/b.rs".into(),
                "pub const B_MAC_DOMAIN: &str = \"recipe.seeded_dup.v1\";".into(),
            ),
        ],
        &fixture_config(),
    );
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, "mac-domain-unique");
    assert_eq!(report.findings[0].file, "crates/kv/src/b.rs");
}

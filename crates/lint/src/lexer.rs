//! A comment/string/raw-string-aware Rust lexer.
//!
//! Token-level only, in the same hand-rolled idiom as
//! [`recipe_scenario::toml`]: no `syn`, no full grammar — just enough lexical
//! structure that the rule engine can pattern-match identifier/punctuation
//! sequences without ever being fooled by a `"ctx.send"` inside a string
//! literal or a `// HashMap` inside a comment. Comments are lexed into a
//! separate side channel (the suppression parser reads them); string and
//! character literals become single tokens carrying their inner text; numeric
//! literals are classified integer vs float (the determinism rules care).
//!
//! The lexer is deliberately tolerant: an unterminated literal consumes to
//! end of input instead of failing, so one malformed file degrades to weaker
//! findings rather than aborting the whole workspace pass.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `ctx`, …).
    Ident,
    /// A lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// String literal — basic, raw, byte or byte-raw. Text is the inner
    /// contents, escapes unprocessed.
    Str,
    /// Character literal (text is the inner contents).
    Char,
    /// Numeric literal.
    Num {
        /// True when the literal is floating-point (`1.5`, `1e9`, `2f64`).
        float: bool,
    },
    /// A single punctuation byte (`{`, `.`, `!`, …). Multi-byte operators
    /// arrive as consecutive tokens (`::` is two `:` tokens).
    Punct,
}

/// One lexeme with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The lexeme kind.
    pub kind: TokenKind,
    /// The lexeme text (inner contents for string/char literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// One comment (line or block), with the line it starts on. Text is the
/// comment body without the `//`, `///`, `//!` or `/* */` framing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment body text.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order (the suppression side channel).
    pub comments: Vec<Comment>,
}

/// Lexes Rust source into tokens plus a comment side channel.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek() {
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.starts_raw_or_byte_literal() => self.raw_or_byte_literal(),
                b'"' => self.basic_string(),
                b'\'' => self.quote(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident(),
                _ => {
                    let line = self.line;
                    let c = match self.bump() {
                        Some(c) => c,
                        None => break,
                    };
                    if c < 0x80 {
                        self.push(TokenKind::Punct, (c as char).to_string(), line);
                    }
                    // Non-ASCII bytes outside literals are skipped: they can
                    // only appear in exotic identifiers this workspace
                    // doesn't use.
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        // Swallow the doc-comment third slash / bang.
        while matches!(self.peek(), Some(b'/') | Some(b'!')) {
            self.bump();
        }
        let start = self.pos;
        while !matches!(self.peek(), Some(b'\n') | None) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.pos;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    end = self.pos;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => {
                    end = self.pos;
                    break;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.out.comments.push(Comment { line, text });
    }

    /// True when the cursor sits on `r"`, `r#"`, `b"`, `b'`, `br"`, `br#"`
    /// — a raw/byte literal rather than the identifiers `r`/`b`.
    fn starts_raw_or_byte_literal(&self) -> bool {
        let rest = &self.src[self.pos..];
        rest.starts_with(b"r\"")
            || rest.starts_with(b"r#\"")
            || rest.starts_with(b"r##")
            || rest.starts_with(b"b\"")
            || rest.starts_with(b"b'")
            || rest.starts_with(b"br\"")
            || rest.starts_with(b"br#")
    }

    fn raw_or_byte_literal(&mut self) {
        let line = self.line;
        if self.peek() == Some(b'b') {
            self.bump();
            if self.peek() == Some(b'\'') {
                // Byte char literal b'x'.
                self.bump();
                let start = self.pos;
                if self.peek() == Some(b'\\') {
                    self.bump();
                    self.bump();
                } else {
                    self.bump();
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                if self.peek() == Some(b'\'') {
                    self.bump();
                }
                self.push(TokenKind::Char, text, line);
                return;
            }
        }
        if self.peek() == Some(b'r') {
            self.bump();
            let mut hashes = 0usize;
            while self.peek() == Some(b'#') {
                hashes += 1;
                self.bump();
            }
            if self.peek() != Some(b'"') {
                // `r#ident` raw identifier: lex the identifier part.
                self.ident_raw(line);
                return;
            }
            self.bump();
            let start = self.pos;
            let closer: Vec<u8> = std::iter::once(b'"')
                .chain(std::iter::repeat_n(b'#', hashes))
                .collect();
            let mut end = self.src.len();
            while self.pos < self.src.len() {
                if self.src[self.pos..].starts_with(&closer) {
                    end = self.pos;
                    for _ in 0..closer.len() {
                        self.bump();
                    }
                    break;
                }
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.src[start..end.min(self.src.len())]);
            self.push(TokenKind::Str, text.into_owned(), line);
        } else {
            // Plain byte string b"..." — the `b` is already consumed.
            self.basic_string();
        }
    }

    fn ident_raw(&mut self, line: usize) {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if is_ident_continue(c)) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Ident, text, line);
    }

    /// Lexes a `"..."` body with the cursor on the opening quote (any `b`
    /// prefix already consumed by the caller).
    fn basic_string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        let start = self.pos;
        let mut end = self.src.len();
        loop {
            match self.peek() {
                None => break,
                Some(b'"') => {
                    end = self.pos;
                    self.bump();
                    break;
                }
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.push(TokenKind::Str, text, line);
    }

    /// Disambiguates `'a` (lifetime), `'x'` (char) and `'\n'` (char).
    fn quote(&mut self) {
        let line = self.line;
        self.bump(); // the `'`
        match (self.peek(), self.peek_at(1)) {
            (Some(b'\\'), _) => {
                // Escaped char literal.
                self.bump();
                let start = self.pos;
                while !matches!(self.peek(), Some(b'\'') | None) {
                    self.bump();
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.bump();
                self.push(TokenKind::Char, format!("\\{text}"), line);
            }
            (Some(c), Some(b'\'')) if c != b'\'' => {
                // Plain char literal 'x'.
                let start = self.pos;
                self.bump();
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.bump();
                self.push(TokenKind::Char, text, line);
            }
            (Some(c), _) if is_ident_start(c) => {
                // Lifetime.
                let start = self.pos;
                while matches!(self.peek(), Some(c) if is_ident_continue(c)) {
                    self.bump();
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.push(TokenKind::Lifetime, text, line);
            }
            _ => {
                // Multi-byte char literal ('é') or stray quote: consume to
                // the closing quote on the same line if present.
                let start = self.pos;
                while !matches!(self.peek(), Some(b'\'') | Some(b'\n') | None) {
                    self.bump();
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                if self.peek() == Some(b'\'') {
                    self.bump();
                }
                self.push(TokenKind::Char, text, line);
            }
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        let mut float = false;
        if self.peek() == Some(b'0')
            && matches!(
                self.peek_at(1),
                Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
            )
        {
            self.bump();
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit() || c == b'_') {
                self.bump();
            }
        } else {
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'_') {
                self.bump();
            }
            // Fractional part — but not a range (`0..10`) or method call
            // (`1.max(2)`).
            if self.peek() == Some(b'.') && matches!(self.peek_at(1), Some(c) if c.is_ascii_digit())
            {
                float = true;
                self.bump();
                while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'_') {
                    self.bump();
                }
            }
            // Exponent.
            if matches!(self.peek(), Some(b'e' | b'E')) {
                let (next, after) = (self.peek_at(1), self.peek_at(2));
                let exponent = matches!(next, Some(c) if c.is_ascii_digit())
                    || (matches!(next, Some(b'+' | b'-'))
                        && matches!(after, Some(c) if c.is_ascii_digit()));
                if exponent {
                    float = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+' | b'-')) {
                        self.bump();
                    }
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'_') {
                        self.bump();
                    }
                }
            }
        }
        // Type suffix (`u64`, `f64`, `usize`…).
        let suffix_start = self.pos;
        while matches!(self.peek(), Some(c) if is_ident_continue(c)) {
            self.bump();
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix.starts_with(b"f32") || suffix.starts_with(b"f64") {
            float = true;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Num { float }, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while matches!(self.peek(), Some(c) if is_ident_continue(c)) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Ident, text, line);
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_produce_code_tokens() {
        let lexed = lex("let x = \"ctx.send(1)\"; // HashMap iteration\n/* Instant::now */");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("send")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("Instant")));
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("HashMap iteration"));
        assert!(lexed.comments[1].text.contains("Instant::now"));
    }

    #[test]
    fn raw_and_byte_strings_are_single_tokens() {
        let toks = kinds(r####"a(br#"x "quoted" y"#, b"recipe.txn.v1", r"\d+")"####);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, vec![r#"x "quoted" y"#, "recipe.txn.v1", r"\d+"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "a"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "x"));
    }

    #[test]
    fn numbers_classify_float_vs_int() {
        let toks = kinds("1_000 0.5 1e9 2f64 0x1f 3..4 1.max(2)");
        let nums: Vec<(bool, &str)> = toks
            .iter()
            .filter_map(|(k, t)| match k {
                TokenKind::Num { float } => Some((*float, t.as_str())),
                _ => None,
            })
            .collect();
        assert_eq!(
            nums,
            vec![
                (false, "1_000"),
                (true, "0.5"),
                (true, "1e9"),
                (true, "2f64"),
                (false, "0x1f"),
                (false, "3"),
                (false, "4"),
                (false, "1"),
                (false, "2"),
            ]
        );
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lexed = lex("/* outer /* inner */ tail */ fn x() {}");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("fn")));
        assert!(lexed.comments[0].text.contains("inner"));
        assert!(lexed.comments[0].text.contains("tail"));
    }
}

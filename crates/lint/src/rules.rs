//! The rule catalogue and per-file analysis.
//!
//! Three families, mirroring the invariants the rest of the workspace
//! enforces dynamically:
//!
//! * **determinism** — the simulation core (`lint.toml`'s
//!   `determinism.core_paths`) must stay bit-reproducible: no wall clocks,
//!   no OS threads, no ambient RNG, no hash-order iteration, no floating
//!   point outside explicitly allowed files;
//! * **shield** — every frame rides `AuthLayer`/`ProtocolShield`: raw
//!   `Ctx::send` callsites are confined to the wrap modules, MAC-domain
//!   constants are unique and well-shaped workspace-wide, and audited send
//!   paths show cost-accounting evidence next to their sealing calls;
//! * **hygiene** — non-test, non-bin library code does not `unwrap`,
//!   `panic!` or `println!` its way past error handling.
//!
//! Everything is token-level pattern matching over [`crate::lexer`] output
//! — deliberately no `syn`, in the same idiom as `recipe_scenario::toml`.

use crate::config::Config;
use crate::lexer::{Token, TokenKind};
use crate::report::Finding;
use crate::scope::Scopes;

/// One rule's identity and documentation line.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case id, used in suppressions and `lint.toml`.
    pub id: &'static str,
    /// Rule family (`determinism`, `shield`, `hygiene`, `meta`).
    pub family: &'static str,
    /// One-line description for `--help` and the README catalogue.
    pub summary: &'static str,
}

/// The full rule catalogue.
pub const RULES: &[Rule] = &[
    Rule {
        id: "wall-clock",
        family: "determinism",
        summary: "std::time::{Instant,SystemTime} in deterministic core code (use the virtual clock / TrustedInstant)",
    },
    Rule {
        id: "thread-spawn",
        family: "determinism",
        summary: "std::thread in deterministic core code (the simulator owns all interleaving)",
    },
    Rule {
        id: "ambient-rng",
        family: "determinism",
        summary: "ambient randomness (thread_rng/OsRng/from_entropy/rand::random) in core code (use the seeded RNG)",
    },
    Rule {
        id: "hash-iteration",
        family: "determinism",
        summary: "iteration over HashMap/HashSet in core code (hash order is nondeterministic; use BTree* or collect+sort)",
    },
    Rule {
        id: "float-arith",
        family: "determinism",
        summary: "floating point in core code outside allowed files (cost accounting must stay integral)",
    },
    Rule {
        id: "raw-ctx-send",
        family: "shield",
        summary: "Ctx::send/send_batch/broadcast outside the allowlisted shield/wrap modules (frames must ride the shield)",
    },
    Rule {
        id: "mac-domain-shape",
        family: "shield",
        summary: "MAC-domain constant not shaped `recipe.<kind>.v<N>`",
    },
    Rule {
        id: "mac-domain-unique",
        family: "shield",
        summary: "two MAC-domain constants share a value (wire domains must be disjoint)",
    },
    Rule {
        id: "uncharged-send",
        family: "shield",
        summary: "a function on an audited send path seals frames without cost-accounting evidence",
    },
    Rule {
        id: "unwrap-in-lib",
        family: "hygiene",
        summary: "unwrap/expect in non-test library code (return an error, or suppress with the invariant)",
    },
    Rule {
        id: "panic-in-lib",
        family: "hygiene",
        summary: "panic!/todo!/unimplemented! in non-test library code",
    },
    Rule {
        id: "print-in-lib",
        family: "hygiene",
        summary: "println!/print!/eprintln!/eprint!/dbg! in non-test library code (use the telemetry/report surface)",
    },
    Rule {
        id: "suppression-reason",
        family: "meta",
        summary: "recipe-lint suppression with a missing/empty reason or naming an unknown rule",
    },
    Rule {
        id: "stale-allow",
        family: "meta",
        summary: "a suppression (inline or lint.toml [[allow]]) that no longer silences any finding",
    },
];

/// Looks a rule up by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// All rule ids, in catalogue order.
pub fn rule_ids() -> Vec<&'static str> {
    RULES.iter().map(|r| r.id).collect()
}

/// A `const *DOMAIN*` string constant collected for the MAC-domain rules.
#[derive(Debug, Clone)]
pub struct DomainConst {
    /// Repo-relative file.
    pub file: String,
    /// 1-based line of the `const`.
    pub line: usize,
    /// Constant name.
    pub name: String,
    /// The literal value.
    pub value: String,
}

/// Per-file analysis output: raw findings (pre-suppression) plus the
/// domain constants for the cross-file uniqueness pass.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Raw findings (suppressions are applied by the engine).
    pub findings: Vec<Finding>,
    /// Collected MAC-domain constants.
    pub domains: Vec<DomainConst>,
}

/// Methods whose call observes hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// True for paths that hold test/bench/example/fixture code rather than
/// shipped library code.
fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples" | "fixtures" | "bin"))
}

/// True for files the hygiene family applies to: library code that is not
/// a binary entry point and not test collateral.
fn is_lib_path(path: &str) -> bool {
    !is_test_path(path) && !path.ends_with("/main.rs") && !path.ends_with("build.rs")
}

/// Runs every per-file rule over one lexed+scoped file.
pub fn analyze_file(
    path: &str,
    tokens: &[Token],
    scopes: &Scopes,
    config: &Config,
) -> FileAnalysis {
    let mut out = FileAnalysis::default();
    let is_core = Config::path_matches(path, &config.core_paths) && !is_test_path(path);
    let send_allowed = Config::path_matches(path, &config.send_allowed);

    if is_core {
        determinism_idents(path, tokens, scopes, &mut out);
        hash_iteration(path, tokens, scopes, &mut out);
        float_arith(path, tokens, scopes, &mut out);
    }
    if !send_allowed && !is_test_path(path) {
        raw_ctx_send(path, tokens, scopes, &mut out);
    }
    if !is_test_path(path) {
        collect_domains(path, tokens, scopes, &mut out);
    }
    if Config::path_matches(path, &config.charged_paths) {
        uncharged_send(path, tokens, scopes, config, &mut out);
    }
    if is_lib_path(path) {
        hygiene(path, tokens, scopes, &mut out);
    }
    out
}

/// Token window helper: `tokens[i + k]`, if present.
fn at(tokens: &[Token], i: usize, k: usize) -> Option<&Token> {
    tokens.get(i + k)
}

/// True when `tokens[i]` starts the two-token path separator `::`.
fn is_path_sep(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(":"))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(":"))
}

/// wall-clock, thread-spawn and ambient-rng: single-identifier and
/// path-shaped patterns.
fn determinism_idents(path: &str, tokens: &[Token], scopes: &Scopes, out: &mut FileAnalysis) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || scopes.in_test[i] {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime" => out.findings.push(Finding::new(
                "wall-clock",
                path,
                t.line,
                format!(
                    "`{}` in deterministic core code — wall clocks diverge across runs; use the virtual clock (`TrustedInstant`) instead",
                    t.text
                ),
            )),
            "thread" if is_path_sep(tokens, i + 1) => {
                if let Some(next) = at(tokens, i, 3) {
                    if next.is_ident("spawn") {
                        out.findings.push(Finding::new(
                            "thread-spawn",
                            path,
                            t.line,
                            "`thread::spawn` in deterministic core code — the simulator owns all interleaving; OS threads break replay",
                        ));
                    }
                }
            }
            "std" if is_path_sep(tokens, i + 1)
                && at(tokens, i, 3).is_some_and(|n| n.is_ident("thread")) =>
            {
                out.findings.push(Finding::new(
                    "thread-spawn",
                    path,
                    t.line,
                    "`std::thread` in deterministic core code — the simulator owns all interleaving; OS threads break replay",
                ));
            }
            "thread_rng" | "OsRng" | "from_entropy" => out.findings.push(Finding::new(
                "ambient-rng",
                path,
                t.line,
                format!(
                    "`{}` in deterministic core code — draw from the seeded deterministic RNG instead",
                    t.text
                ),
            )),
            "rand"
                if is_path_sep(tokens, i + 1)
                    && at(tokens, i, 3).is_some_and(|n| n.is_ident("random")) =>
            {
                out.findings.push(Finding::new(
                    "ambient-rng",
                    path,
                    t.line,
                    "`rand::random` in deterministic core code — draw from the seeded deterministic RNG instead",
                ));
            }
            _ => {}
        }
    }
}

/// hash-iteration: track identifiers declared with HashMap/HashSet types
/// (or initialized from their constructors), then flag order-observing
/// method calls and bare `for … in` iteration over them.
fn hash_iteration(path: &str, tokens: &[Token], scopes: &Scopes, out: &mut FileAnalysis) {
    // Pass 1: collect tracked names.
    let mut tracked: Vec<String> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // `name: [&]['a][mut] HashMap<…>` (field, param or annotated let).
        let mut j = i;
        while j > 0 {
            let prev = &tokens[j - 1];
            if prev.is_punct("&") || prev.is_ident("mut") || prev.kind == TokenKind::Lifetime {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 2
            && tokens[j - 1].is_punct(":")
            && !tokens[j - 2].is_punct(":")
            && tokens[j - 2].kind == TokenKind::Ident
        {
            tracked.push(tokens[j - 2].text.clone());
        }
        // `let [mut] name = HashMap::new()` / `HashSet::with_capacity(…)`.
        if i >= 2 && tokens[i - 1].is_punct("=") && tokens[i - 2].kind == TokenKind::Ident {
            tracked.push(tokens[i - 2].text.clone());
        }
    }
    tracked.sort_unstable();
    tracked.dedup();
    if tracked.is_empty() {
        return;
    }

    let flag = |out: &mut FileAnalysis, line: usize, name: &str, how: &str| {
        out.findings.push(Finding::new(
            "hash-iteration",
            path,
            line,
            format!(
                "{how} over HashMap/HashSet `{name}` in deterministic core code — hash order varies across runs; use BTreeMap/BTreeSet or collect-and-sort"
            ),
        ));
    };

    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || scopes.in_test[i] {
            continue;
        }
        // `name.iter()`-family calls.
        if tracked.binary_search(&t.text).is_ok()
            && at(tokens, i, 1).is_some_and(|n| n.is_punct("."))
            && at(tokens, i, 3).is_some_and(|n| n.is_punct("("))
        {
            if let Some(method) = at(tokens, i, 2) {
                if ITER_METHODS.contains(&method.text.as_str()) {
                    flag(out, method.line, &t.text, &format!("`.{}()`", method.text));
                }
            }
        }
        // `for pat in [&][mut] [self.]name {` — direct iteration without a
        // method call.
        if t.is_ident("for") {
            let mut j = i + 1;
            let mut found_in = None;
            while j < tokens.len() && j < i + 24 {
                if tokens[j].is_ident("in") {
                    found_in = Some(j);
                    break;
                }
                if tokens[j].is_punct("{") {
                    break;
                }
                j += 1;
            }
            if let Some(in_idx) = found_in {
                let mut expr = Vec::new();
                let mut k = in_idx + 1;
                while k < tokens.len() && !tokens[k].is_punct("{") {
                    expr.push(&tokens[k]);
                    k += 1;
                }
                let simple = expr.iter().all(|tok| {
                    tok.is_punct("&") || tok.is_punct(".") || tok.kind == TokenKind::Ident
                });
                if simple {
                    if let Some(name) = expr.iter().find(|tok| {
                        tok.kind == TokenKind::Ident && tracked.binary_search(&tok.text).is_ok()
                    }) {
                        flag(out, name.line, &name.text, "`for … in`");
                    }
                }
            }
        }
    }
}

/// float-arith: float literals and f32/f64 tokens, one finding per line.
fn float_arith(path: &str, tokens: &[Token], scopes: &Scopes, out: &mut FileAnalysis) {
    let mut last_line = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        if scopes.in_test[i] || t.line == last_line {
            continue;
        }
        let is_float = matches!(t.kind, TokenKind::Num { float: true })
            || t.is_ident("f32")
            || t.is_ident("f64");
        if is_float {
            last_line = t.line;
            out.findings.push(Finding::new(
                "float-arith",
                path,
                t.line,
                "floating point in deterministic core code — keep virtual-clock and state arithmetic integral, or allow the file in lint.toml with the reason it stays reproducible",
            ));
        }
    }
}

/// raw-ctx-send: `ctx.send(…)` / `ctx.send_batch(…)` / `ctx.broadcast(…)`
/// and `Ctx::send`-style paths outside the allowlisted wrap modules.
fn raw_ctx_send(path: &str, tokens: &[Token], scopes: &Scopes, out: &mut FileAnalysis) {
    const SEND_METHODS: &[&str] = &["send", "send_batch", "broadcast"];
    for (i, t) in tokens.iter().enumerate() {
        if scopes.in_test[i] {
            continue;
        }
        let method = if t.is_ident("ctx")
            && at(tokens, i, 1).is_some_and(|n| n.is_punct("."))
            && at(tokens, i, 3).is_some_and(|n| n.is_punct("("))
        {
            at(tokens, i, 2)
        } else if t.is_ident("Ctx") && is_path_sep(tokens, i + 1) {
            at(tokens, i, 3)
        } else {
            None
        };
        if let Some(m) = method {
            if SEND_METHODS.contains(&m.text.as_str()) {
                out.findings.push(Finding::new(
                    "raw-ctx-send",
                    path,
                    m.line,
                    format!(
                        "raw `Ctx::{}` outside the allowlisted shield modules — frames must be wrapped by AuthLayer/ProtocolShield before transmission (see shield.send_allowed in lint.toml)",
                        m.text
                    ),
                ));
            }
        }
    }
}

/// Collects `const *DOMAIN* = "…"` constants and checks the
/// `recipe.<kind>.v<N>` shape.
fn collect_domains(path: &str, tokens: &[Token], scopes: &Scopes, out: &mut FileAnalysis) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("const") || scopes.in_test[i] {
            continue;
        }
        let Some(name) = at(tokens, i, 1) else {
            continue;
        };
        if name.kind != TokenKind::Ident || !name.text.contains("DOMAIN") {
            continue;
        }
        // Find the first string literal before the terminating `;`.
        let mut j = i + 2;
        let mut value = None;
        while j < tokens.len() && !tokens[j].is_punct(";") {
            if tokens[j].kind == TokenKind::Str {
                value = Some(&tokens[j]);
                break;
            }
            j += 1;
        }
        let Some(value) = value else { continue };
        if !domain_shape_ok(&value.text) {
            out.findings.push(Finding::new(
                "mac-domain-shape",
                path,
                name.line,
                format!(
                    "MAC domain `{}` = \"{}\" does not match the wire-domain shape `recipe.<kind>.v<N>`",
                    name.text, value.text
                ),
            ));
        }
        out.domains.push(DomainConst {
            file: path.to_string(),
            line: name.line,
            name: name.text.clone(),
            value: value.text.clone(),
        });
    }
}

/// `recipe.<kind>.v<N>` with `<kind>` in `[a-z0-9_]+` and `<N>` decimal.
fn domain_shape_ok(value: &str) -> bool {
    let parts: Vec<&str> = value.split('.').collect();
    let [prefix, kind, version] = parts.as_slice() else {
        return false;
    };
    *prefix == "recipe"
        && !kind.is_empty()
        && kind
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && version.len() > 1
        && version.starts_with('v')
        && version[1..].chars().all(|c| c.is_ascii_digit())
}

/// Cross-file pass: every MAC-domain value must be declared exactly once.
pub fn check_domain_uniqueness(domains: &[DomainConst]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen: Vec<(&str, &DomainConst)> = Vec::new();
    for d in domains {
        if let Some((_, first)) = seen.iter().find(|(v, _)| *v == d.value) {
            findings.push(Finding::new(
                "mac-domain-unique",
                &d.file,
                d.line,
                format!(
                    "MAC domain `{}` duplicates the value \"{}\" first declared as `{}` at {}:{} — wire domains must be disjoint or frames become confusable",
                    d.name, d.value, first.name, first.file, first.line
                ),
            ));
        } else {
            seen.push((&d.value, d));
        }
    }
    findings
}

/// uncharged-send: on audited send-path files, a function that seals
/// frames must show cost-accounting evidence in the same body.
fn uncharged_send(
    path: &str,
    tokens: &[Token],
    scopes: &Scopes,
    config: &Config,
    out: &mut FileAnalysis,
) {
    for span in &scopes.fns {
        if span.in_test {
            continue;
        }
        let body = &tokens[span.body_start..=span.body_end.min(tokens.len() - 1)];
        let seals = body.iter().enumerate().any(|(k, t)| {
            t.kind == TokenKind::Ident
                && config.seal_tokens.iter().any(|s| s == &t.text)
                && k > 0
                && body[k - 1].is_punct(".")
                && body.get(k + 1).is_some_and(|n| n.is_punct("("))
        });
        if !seals {
            continue;
        }
        let evidence = body.iter().any(|t| {
            t.kind == TokenKind::Ident
                && config
                    .charge_evidence
                    .iter()
                    .any(|e| t.text.contains(e.as_str()))
        });
        if !evidence {
            out.findings.push(Finding::new(
                "uncharged-send",
                path,
                span.line,
                format!(
                    "fn `{}` seals frames on an audited send path but shows no cost-accounting evidence ({}) — charge the work on the virtual clock next to the seal",
                    span.name,
                    config.charge_evidence.join("/"),
                ),
            ));
        }
    }
}

/// unwrap-in-lib, panic-in-lib, print-in-lib.
fn hygiene(path: &str, tokens: &[Token], scopes: &Scopes, out: &mut FileAnalysis) {
    const UNWRAPS: &[&str] = &["unwrap", "expect", "unwrap_err"];
    const PANICS: &[&str] = &["panic", "todo", "unimplemented"];
    const PRINTS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || scopes.in_test[i] {
            continue;
        }
        let text = t.text.as_str();
        // `.unwrap()`/`.unwrap_err()` only with an *empty* argument list:
        // `Option::unwrap` takes no arguments, so `shield.unwrap(from,
        // bytes)` — a domain method that happens to share the name — is not
        // a finding. `.expect(...)` always carries its message argument.
        let nullary = at(tokens, i, 1).is_some_and(|n| n.is_punct("("))
            && at(tokens, i, 2).is_some_and(|n| n.is_punct(")"));
        let panicky_call = if text == "expect" {
            at(tokens, i, 1).is_some_and(|n| n.is_punct("("))
        } else {
            nullary
        };
        if UNWRAPS.contains(&text) && i > 0 && tokens[i - 1].is_punct(".") && panicky_call {
            out.findings.push(Finding::new(
                "unwrap-in-lib",
                path,
                t.line,
                format!(
                    "`.{text}()` in non-test library code — return an error, or suppress with the invariant that makes the panic unreachable"
                ),
            ));
        } else if at(tokens, i, 1).is_some_and(|n| n.is_punct("!"))
            && at(tokens, i, 2).is_some_and(|n| n.is_punct("(") || n.is_punct("["))
        {
            if PANICS.contains(&text) {
                out.findings.push(Finding::new(
                    "panic-in-lib",
                    path,
                    t.line,
                    format!(
                        "`{text}!` in non-test library code — return an error, or suppress with the invariant that makes the panic unreachable"
                    ),
                ));
            } else if PRINTS.contains(&text) {
                out.findings.push(Finding::new(
                    "print-in-lib",
                    path,
                    t.line,
                    format!(
                        "`{text}!` in non-test library code — route output through the caller or the telemetry/report surface"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::scan;

    fn core_config() -> Config {
        Config {
            core_paths: vec!["core".into()],
            charged_paths: vec!["charged/path.rs".into()],
            ..Config::default()
        }
    }

    fn rules_fired(path: &str, src: &str) -> Vec<String> {
        let lexed = lex(src);
        let scopes = scan(&lexed.tokens);
        let analysis = analyze_file(path, &lexed.tokens, &scopes, &core_config());
        analysis.findings.into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn determinism_rules_fire_only_in_core_paths() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_fired("core/a.rs", src), vec!["wall-clock"]);
        assert!(rules_fired("other/a.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_tracks_decls_and_flags_order_observation() {
        let src = "struct S { m: HashMap<u64, u32> }\n\
                   fn f(s: &S) { for v in s.m.values() { use_it(v); } }\n\
                   fn g(s: &S) { let _ = s.m.get(&1); }";
        let fired = rules_fired("core/a.rs", src);
        assert_eq!(fired, vec!["hash-iteration"]);
    }

    #[test]
    fn for_loop_direct_iteration_is_flagged() {
        let src = "fn f() { let set = HashSet::new(); for x in &set { touch(x); } }";
        assert_eq!(rules_fired("core/a.rs", src), vec!["hash-iteration"]);
    }

    #[test]
    fn raw_ctx_send_respects_allowlist_and_tests() {
        let src = "fn f(ctx: &mut Ctx) { ctx.send(dst, bytes); }";
        let lexed = lex(src);
        let scopes = scan(&lexed.tokens);
        let mut config = core_config();
        let fired = analyze_file("anywhere/a.rs", &lexed.tokens, &scopes, &config);
        assert_eq!(fired.findings[0].rule, "raw-ctx-send");
        config.send_allowed = vec!["anywhere".into()];
        let clean = analyze_file("anywhere/a.rs", &lexed.tokens, &scopes, &config);
        assert!(clean.findings.is_empty());
    }

    #[test]
    fn domain_shape_and_uniqueness() {
        let src = "const A_MAC_DOMAIN: &[u8] = b\"recipe.batch.v1\";\n\
                   const B_MAC_DOMAIN: &[u8] = b\"recipe.batch.v1\";\n\
                   const C_MAC_DOMAIN: &[u8] = b\"not-a-domain\";";
        let lexed = lex(src);
        let scopes = scan(&lexed.tokens);
        let analysis = analyze_file("core/a.rs", &lexed.tokens, &scopes, &core_config());
        assert_eq!(analysis.domains.len(), 3);
        assert!(analysis
            .findings
            .iter()
            .any(|f| f.rule == "mac-domain-shape"));
        let dups = check_domain_uniqueness(&analysis.domains);
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].rule, "mac-domain-unique");
        assert_eq!(dups[0].line, 2);
    }

    #[test]
    fn uncharged_send_needs_evidence_next_to_seal() {
        let firing = "fn ship(&mut self) { let wire = self.channel.seal(&chunk); tx(wire); }";
        assert_eq!(
            rules_fired("charged/path.rs", firing),
            vec!["uncharged-send"]
        );
        let clean = "fn ship(&mut self) { let wire = self.channel.seal(&chunk); \
                     let cost = model.send_cost_ns(p, wire.len()); charge(cost); }";
        assert!(rules_fired("charged/path.rs", clean).is_empty());
    }

    #[test]
    fn hygiene_flags_lib_code_but_not_tests_bins_or_test_dirs() {
        let src = "fn f() { x.unwrap(); panic!(\"no\"); println!(\"hi\"); }\n\
                   #[cfg(test)] mod tests { fn g() { y.unwrap(); } }";
        let fired = rules_fired("crates/foo/src/lib.rs", src);
        assert_eq!(fired, vec!["unwrap-in-lib", "panic-in-lib", "print-in-lib"]);
        assert!(rules_fired("crates/foo/src/main.rs", src).is_empty());
        assert!(rules_fired("crates/foo/tests/t.rs", src).is_empty());
        assert!(rules_fired("crates/foo/src/bin/tool.rs", src).is_empty());
    }

    #[test]
    fn float_arith_collapses_per_line() {
        let src = "fn f() -> f64 { 0.5 + 1e9 }\nfn g() {}";
        let fired = rules_fired("core/a.rs", src);
        assert_eq!(fired, vec!["float-arith"]);
    }
}

//! `lint.toml` loading.
//!
//! The config file is parsed with [`recipe_scenario::toml`] — the same
//! hand-rolled TOML parser scenario files use — and decoded with the same
//! strict [`MapDecoder`]: unknown keys are rejected with the allowed set
//! named, so a typo'd knob fails loudly instead of silently disabling a
//! rule.

use recipe_scenario::decode::{MapDecoder, ScenarioError};

use crate::rules;

/// One config-level suppression: a rule silenced for a path prefix, with a
/// mandatory human reason (reasons are themselves linted — an empty one is
/// a finding).
#[derive(Debug, Clone)]
pub struct PathAllow {
    /// Rule id being allowed.
    pub rule: String,
    /// Path prefix (repo-relative, `/`-separated) the allow covers.
    pub path: String,
    /// Why the rule is allowed here.
    pub reason: String,
}

/// The analyzer configuration, normally loaded from `lint.toml` at the
/// workspace root.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (repo-relative) to walk for `.rs` files.
    pub roots: Vec<String>,
    /// Path prefixes excluded from the walk (fixtures, vendor stand-ins).
    pub exclude: Vec<String>,
    /// Path prefixes of the deterministic core — the determinism rule
    /// family only fires here.
    pub core_paths: Vec<String>,
    /// Path prefixes where raw `Ctx::send`/`send_batch`/`broadcast`
    /// callsites are sanctioned (the shield/wrap modules themselves).
    pub send_allowed: Vec<String>,
    /// Files whose functions form audited send paths: a function that
    /// seals frames there must show cost-accounting evidence.
    pub charged_paths: Vec<String>,
    /// Method names that count as "seals a frame" in `charged_paths`.
    pub seal_tokens: Vec<String>,
    /// Identifier substrings that count as cost-accounting evidence.
    pub charge_evidence: Vec<String>,
    /// Config-level suppressions.
    pub allows: Vec<PathAllow>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            roots: vec!["crates".into(), "src".into()],
            exclude: Vec::new(),
            core_paths: Vec::new(),
            send_allowed: Vec::new(),
            charged_paths: Vec::new(),
            seal_tokens: default_seal_tokens(),
            charge_evidence: default_charge_evidence(),
            allows: Vec::new(),
        }
    }
}

fn default_seal_tokens() -> Vec<String> {
    ["seal", "seal_request", "seal_response", "shield", "wrap"]
        .map(String::from)
        .to_vec()
}

fn default_charge_evidence() -> Vec<String> {
    ["charge", "cost", "send_leg"].map(String::from).to_vec()
}

/// Parses and strictly decodes a `lint.toml` document.
pub fn parse_config(text: &str) -> Result<Config, ScenarioError> {
    let doc = recipe_scenario::toml::parse(text).map_err(ScenarioError::msg)?;
    let mut root = MapDecoder::new(&doc, "")?;
    let mut config = Config::default();

    root.table("scan", |scan| {
        if let Some(roots) = scan.opt::<Vec<String>>("roots")? {
            config.roots = roots;
        }
        config.exclude = scan.opt_or("exclude", Vec::new())?;
        Ok(())
    })?;
    root.table("determinism", |det| {
        config.core_paths = det.opt_or("core_paths", Vec::new())?;
        Ok(())
    })?;
    root.table("shield", |shield| {
        config.send_allowed = shield.opt_or("send_allowed", Vec::new())?;
        config.charged_paths = shield.opt_or("charged_paths", Vec::new())?;
        if let Some(tokens) = shield.opt::<Vec<String>>("seal_tokens")? {
            config.seal_tokens = tokens;
        }
        if let Some(evidence) = shield.opt::<Vec<String>>("charge_evidence")? {
            config.charge_evidence = evidence;
        }
        Ok(())
    })?;
    config.allows = root.tables("allow", |_, allow| {
        let entry = PathAllow {
            rule: allow.req("rule")?,
            path: allow.req("path")?,
            reason: allow.req("reason")?,
        };
        if rules::rule_by_id(&entry.rule).is_none() {
            return Err(ScenarioError(format!(
                "[[allow]] names unknown rule `{}` (known rules: {})",
                entry.rule,
                rules::rule_ids().join(", ")
            )));
        }
        Ok(entry)
    })?;
    root.deny_unknown()?;
    Ok(config)
}

impl Config {
    /// True when `path` (repo-relative, `/`-separated) falls under any of
    /// the given prefixes.
    pub fn path_matches(path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| {
            let p = p.trim_end_matches('/');
            path == p || path.starts_with(&format!("{p}/"))
        })
    }

    /// Config-level allow covering `(rule, path)`, if any.
    pub fn allow_for(&self, rule: &str, path: &str) -> Option<&PathAllow> {
        self.allow_index_for(rule, path).map(|i| &self.allows[i])
    }

    /// Index (into [`Config::allows`]) of the first allow covering
    /// `(rule, path)`, so the engine can track which allows actually fire
    /// (`stale-allow`).
    pub fn allow_index_for(&self, rule: &str, path: &str) -> Option<usize> {
        self.allows.iter().position(|a| {
            a.rule == rule && Config::path_matches(path, std::slice::from_ref(&a.path))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_a_full_config() {
        let config = parse_config(
            r#"
[scan]
roots = ["crates", "src"]
exclude = ["crates/lint/fixtures"]

[determinism]
core_paths = ["crates/sim/src"]

[shield]
send_allowed = ["crates/protocols/src"]
charged_paths = ["crates/shard/src/txn.rs"]

[[allow]]
rule = "float-arith"
path = "crates/sim/src/cost.rs"
reason = "fixed-order accumulation"
"#,
        )
        .expect("config parses");
        assert_eq!(config.exclude, vec!["crates/lint/fixtures"]);
        assert_eq!(config.core_paths, vec!["crates/sim/src"]);
        assert_eq!(config.allows.len(), 1);
        assert!(config
            .allow_for("float-arith", "crates/sim/src/cost.rs")
            .is_some());
        assert!(config
            .allow_for("float-arith", "crates/sim/src/cluster.rs")
            .is_none());
    }

    #[test]
    fn unknown_keys_and_rules_are_rejected() {
        let err = parse_config("[scan]\nrots = [\"crates\"]\n").unwrap_err();
        assert!(err.to_string().contains("unknown key"), "{err}");
        let err =
            parse_config("[[allow]]\nrule = \"no-such-rule\"\npath = \"x\"\nreason = \"y\"\n")
                .unwrap_err();
        assert!(err.to_string().contains("unknown rule"), "{err}");
    }

    #[test]
    fn prefix_matching_is_component_wise() {
        let prefixes = vec!["crates/sim/src".to_string()];
        assert!(Config::path_matches("crates/sim/src/cost.rs", &prefixes));
        assert!(!Config::path_matches(
            "crates/sim/srcfoo/cost.rs",
            &prefixes
        ));
    }
}

//! `recipe-lint` — the workspace static-analysis gate.
//!
//! ```text
//! recipe-lint [--root DIR] [--config FILE] [--format human|json] [--out FILE] [--list-rules]
//! ```
//!
//! Exit codes are stable: `0` clean, `1` findings, `2` usage or
//! configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use recipe_lint::{lint_workspace, load_config, Config, RULES};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
    out: Option<PathBuf>,
    list_rules: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        format: Format::Human,
        out: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = next_value(&mut it, "--root")?.into(),
            "--config" => args.config = Some(next_value(&mut it, "--config")?.into()),
            "--out" => args.out = Some(next_value(&mut it, "--out")?.into()),
            "--format" => {
                args.format = match next_value(&mut it, "--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (human|json)")),
                }
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "recipe-lint [--root DIR] [--config FILE] [--format human|json] [--out FILE] [--list-rules]\n\
                     \n\
                     Workspace static analysis: determinism, shield-coverage and hygiene\n\
                     invariants. Exit codes: 0 clean, 1 findings, 2 usage/config error."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(args)
}

fn next_value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("recipe-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in RULES {
            println!("{:<20} [{}] {}", rule.id, rule.family, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let config = if config_path.exists() {
        match load_config(&config_path) {
            Ok(config) => config,
            Err(e) => {
                eprintln!("recipe-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else if args.config.is_some() {
        eprintln!("recipe-lint: config {} not found", config_path.display());
        return ExitCode::from(2);
    } else {
        Config::default()
    };

    let report = match lint_workspace(&args.root, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("recipe-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let rendered = match args.format {
        Format::Human => report.human(),
        Format::Json => report.json(),
    };
    if let Some(out) = &args.out {
        if let Some(parent) = out.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(out, &rendered) {
            eprintln!("recipe-lint: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    print!("{rendered}");
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

//! Lightweight item scanner over the token stream.
//!
//! Tracks just enough structure for rule scoping: which tokens sit inside
//! test code (`#[cfg(test)]` modules, `#[test]` functions) and the body
//! spans of named functions (the shield-coverage rules reason per
//! function). Brace-counting, not parsing — attributes are associated with
//! the next `{`-delimited item, which is exact for the idioms this
//! workspace uses.

use crate::lexer::{Token, TokenKind};

/// The body span of one named function.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the body's opening `{`.
    pub body_start: usize,
    /// Token index of the body's closing `}` (or last token when
    /// unterminated).
    pub body_end: usize,
    /// True when the function is test code (`#[test]`, or nested under a
    /// `#[cfg(test)]` scope).
    pub in_test: bool,
}

/// Scope classification for a token stream.
#[derive(Debug, Default)]
pub struct Scopes {
    /// Per-token: true when the token sits inside test code.
    pub in_test: Vec<bool>,
    /// Named function bodies, in source order.
    pub fns: Vec<FnSpan>,
}

/// Walks `tokens` and classifies test regions and function bodies.
pub fn scan(tokens: &[Token]) -> Scopes {
    let mut scopes = Scopes {
        in_test: vec![false; tokens.len()],
        fns: Vec::new(),
    };
    // Test flag per open brace; `cur` is true when any enclosing brace is
    // a test scope.
    let mut stack: Vec<bool> = Vec::new();
    let mut cur = false;
    // Set by a `#[test]`-ish attribute, consumed by the next item.
    let mut pending_attr = false;
    // A `fn` header in flight: (name, line, test flag), plus the paren
    // depth inside its signature so `{` in a closure-typed parameter
    // default does not get mistaken for the body.
    let mut pending_fn: Option<(String, usize, bool)> = None;
    let mut head_parens = 0usize;
    // Open function bodies: (index into scopes.fns, stack depth of body).
    let mut open_fns: Vec<(usize, usize)> = Vec::new();

    let mut i = 0;
    while i < tokens.len() {
        scopes.in_test[i] = cur;
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct => match t.text.as_str() {
                "#" if matches!(tokens.get(i + 1), Some(n) if n.is_punct("[")) => {
                    let (end, is_test) = scan_attribute(tokens, i + 1);
                    if is_test {
                        pending_attr = true;
                    }
                    for j in i..end.min(scopes.in_test.len()) {
                        scopes.in_test[j] = cur;
                    }
                    i = end;
                    continue;
                }
                // `;` only terminates a bodyless fn at signature top level,
                // not inside `(params)` or `[u8; 4]` array types.
                "(" | "[" => head_parens += pending_fn.is_some() as usize,
                ")" | "]" => head_parens = head_parens.saturating_sub(1),
                "{" => {
                    let mut test = cur || pending_attr;
                    pending_attr = false;
                    if let Some((name, line, fn_test)) = pending_fn.take() {
                        test = test || fn_test;
                        scopes.fns.push(FnSpan {
                            name,
                            line,
                            body_start: i,
                            body_end: tokens.len().saturating_sub(1),
                            in_test: test,
                        });
                        open_fns.push((scopes.fns.len() - 1, stack.len()));
                        stack.push(test);
                    } else {
                        stack.push(test);
                    }
                    cur = cur || test;
                    scopes.in_test[i] = cur;
                }
                "}" => {
                    stack.pop();
                    cur = stack.iter().any(|&t| t);
                    if let Some(&(fn_idx, depth)) = open_fns.last() {
                        if depth == stack.len() {
                            scopes.fns[fn_idx].body_end = i;
                            open_fns.pop();
                        }
                    }
                }
                ";" if head_parens == 0 => {
                    // Trait method declaration without a body, or an
                    // attribute consumed by a braceless item.
                    pending_fn = None;
                    pending_attr = false;
                }
                _ => {}
            },
            TokenKind::Ident if t.text == "fn" => {
                let name = match tokens.get(i + 1) {
                    Some(n) if n.kind == TokenKind::Ident => n.text.clone(),
                    _ => String::new(),
                };
                pending_fn = Some((name, t.line, cur || pending_attr));
                pending_attr = false;
                head_parens = 0;
            }
            _ => {}
        }
        i += 1;
    }
    scopes
}

/// Scans an attribute starting at the `[` token index; returns the index
/// one past the closing `]` and whether the attribute marks test code
/// (contains the ident `test` outside a `not(...)`).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (i + 1, has_test && !has_not);
            }
        } else if t.is_ident("test") {
            has_test = true;
        } else if t.is_ident("not") {
            has_not = true;
        }
        i += 1;
    }
    (tokens.len(), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn test_flag_at_ident(src: &str, ident: &str) -> bool {
        let lexed = lex(src);
        let scopes = scan(&lexed.tokens);
        let idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident(ident))
            .expect("ident present");
        scopes.in_test[idx]
    }

    #[test]
    fn cfg_test_mod_bodies_are_test_code() {
        let src = "fn lib_code() { alpha(); }\n\
                   #[cfg(test)]\nmod tests { fn helper() { beta(); } }";
        assert!(!test_flag_at_ident(src, "alpha"));
        assert!(test_flag_at_ident(src, "beta"));
    }

    #[test]
    fn test_attr_fns_are_test_code_and_siblings_are_not() {
        let src = "#[test]\nfn t() { gamma(); }\nfn real() { delta(); }";
        assert!(test_flag_at_ident(src, "gamma"));
        assert!(!test_flag_at_ident(src, "delta"));
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn real() { epsilon(); }";
        assert!(!test_flag_at_ident(src, "epsilon"));
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn outer() { inner_call(); }\nfn second() {}";
        let lexed = lex(src);
        let scopes = scan(&lexed.tokens);
        assert_eq!(scopes.fns.len(), 2);
        assert_eq!(scopes.fns[0].name, "outer");
        let span = &scopes.fns[0];
        let inner = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("inner_call"))
            .expect("call present");
        assert!(span.body_start < inner && inner < span.body_end);
        assert_eq!(scopes.fns[1].name, "second");
    }

    #[test]
    fn trait_method_declarations_do_not_swallow_the_next_body() {
        let src = "trait T { fn decl(&self); }\nfn real_body() { zeta(); }";
        let lexed = lex(src);
        let scopes = scan(&lexed.tokens);
        let real = scopes
            .fns
            .iter()
            .find(|f| f.name == "real_body")
            .expect("real_body tracked");
        assert!(!real.in_test);
    }
}

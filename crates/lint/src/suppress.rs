//! Inline suppression comments.
//!
//! A finding is silenced by an adjacent comment of the form
//!
//! ```text
//! // recipe-lint: allow(rule-id, reason = "why this is sound")
//! ```
//!
//! on the finding's own line or the line directly above it, or for a whole
//! file by `allow-file(...)` anywhere in that file. The `reason` is
//! mandatory and must be nonempty — suppressions are themselves linted
//! (`suppression-reason` findings), so an unexplained allow fails CI just
//! like the finding it hides.

use crate::lexer::Comment;
use crate::report::Finding;
use crate::rules;

/// One parsed suppression directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line of the comment.
    pub line: usize,
    /// The rule id being allowed.
    pub rule: String,
    /// True for `allow-file` (whole-file scope) rather than `allow`
    /// (adjacent-line scope).
    pub file_scope: bool,
}

/// Parsed suppressions plus the findings the parsing itself produced
/// (malformed directive, empty reason, unknown rule).
#[derive(Debug, Default)]
pub struct Suppressions {
    /// Well-formed directives.
    pub entries: Vec<Suppression>,
    /// `suppression-reason` findings.
    pub findings: Vec<Finding>,
}

impl Suppressions {
    /// True when `(rule, line)` is covered by a directive.
    pub fn covers(&self, rule: &str, line: usize) -> bool {
        self.covering_entry(rule, line).is_some()
    }

    /// Index (into [`Suppressions::entries`]) of the first directive
    /// covering `(rule, line)`, so the engine can track which directives
    /// actually fire (`stale-allow`).
    pub fn covering_entry(&self, rule: &str, line: usize) -> Option<usize> {
        self.entries
            .iter()
            .position(|s| s.rule == rule && (s.file_scope || s.line == line || s.line + 1 == line))
    }
}

/// The marker every directive starts with.
const MARKER: &str = "recipe-lint:";

/// Scans a file's comments for `recipe-lint:` directives.
pub fn parse(path: &str, comments: &[Comment]) -> Suppressions {
    let mut out = Suppressions::default();
    for comment in comments {
        // Only a comment that *starts* with the marker is a directive —
        // prose that merely mentions `recipe-lint:` (like the example in
        // this module's docs, which keeps its `// ` framing) is not.
        let Some(directive) = comment.text.trim_start().strip_prefix(MARKER) else {
            continue;
        };
        let directive = directive.trim();
        match parse_directive(directive) {
            Ok((rule, file_scope, reason)) => {
                if rules::rule_by_id(&rule).is_none() {
                    out.findings.push(Finding::new(
                        "suppression-reason",
                        path,
                        comment.line,
                        format!(
                            "suppression names unknown rule `{rule}` (known rules: {})",
                            rules::rule_ids().join(", ")
                        ),
                    ));
                } else if reason.trim().is_empty() {
                    out.findings.push(Finding::new(
                        "suppression-reason",
                        path,
                        comment.line,
                        format!("suppression of `{rule}` has an empty reason — say why the finding is sound"),
                    ));
                } else {
                    out.entries.push(Suppression {
                        line: comment.line,
                        rule,
                        file_scope,
                    });
                }
            }
            Err(msg) => out.findings.push(Finding::new(
                "suppression-reason",
                path,
                comment.line,
                format!("malformed recipe-lint directive: {msg} (expected `allow(<rule>, reason = \"...\")`)"),
            )),
        }
    }
    out
}

/// Parses `allow(<rule>, reason = "<text>")` / `allow-file(...)`.
/// Returns `(rule, file_scope, reason)`.
fn parse_directive(text: &str) -> Result<(String, bool, String), String> {
    let (file_scope, rest) = if let Some(rest) = text.strip_prefix("allow-file") {
        (true, rest)
    } else if let Some(rest) = text.strip_prefix("allow") {
        (false, rest)
    } else {
        return Err(format!("unknown directive `{text}`"));
    };
    let rest = rest.trim_start();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.rfind(')').map(|end| &r[..end]))
        .ok_or_else(|| "missing parentheses".to_string())?;
    let (rule, tail) = match inner.split_once(',') {
        Some((rule, tail)) => (rule.trim(), tail.trim()),
        None => (inner.trim(), ""),
    };
    if rule.is_empty() {
        return Err("missing rule id".to_string());
    }
    let reason = match tail.strip_prefix("reason") {
        Some(assign) => {
            let assign = assign.trim_start();
            let value = assign
                .strip_prefix('=')
                .ok_or_else(|| "expected `reason = \"...\"`".to_string())?
                .trim();
            value
                .strip_prefix('"')
                .and_then(|v| v.rfind('"').map(|end| v[..end].to_string()))
                .ok_or_else(|| "reason must be a double-quoted string".to_string())?
        }
        None if tail.is_empty() => String::new(),
        None => return Err(format!("unexpected trailing `{tail}`")),
    };
    Ok((rule.to_string(), file_scope, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Suppressions {
        parse("f.rs", &lex(src).comments)
    }

    #[test]
    fn well_formed_allow_covers_same_and_next_line() {
        let s = parse_src(
            "// recipe-lint: allow(unwrap-in-lib, reason = \"len checked above\")\nlet x = y.unwrap();",
        );
        assert!(s.findings.is_empty());
        assert!(s.covers("unwrap-in-lib", 1));
        assert!(s.covers("unwrap-in-lib", 2));
        assert!(!s.covers("unwrap-in-lib", 3));
        assert!(!s.covers("panic-in-lib", 2));
    }

    #[test]
    fn allow_file_covers_everything() {
        let s = parse_src("// recipe-lint: allow-file(float-arith, reason = \"report-only\")\n");
        assert!(s.covers("float-arith", 500));
    }

    #[test]
    fn empty_reason_unknown_rule_and_malformed_are_findings() {
        let s = parse_src("// recipe-lint: allow(unwrap-in-lib)\n");
        assert_eq!(s.findings.len(), 1);
        assert!(s.findings[0].message.contains("empty reason"));

        let s = parse_src("// recipe-lint: allow(bogus, reason = \"x\")\n");
        assert!(s.findings[0].message.contains("unknown rule"));

        let s = parse_src("// recipe-lint: disallow(unwrap-in-lib)\n");
        assert!(s.findings[0].message.contains("malformed"));
        assert!(s.entries.is_empty());
    }
}

//! # recipe-lint — workspace static analysis
//!
//! Every guarantee this reproduction makes — bit-identical committed state
//! across seeds, every frame riding `AuthLayer`/`ProtocolShield`, disjoint
//! MAC domains per wire format — used to be enforced by convention and
//! after-the-fact proptests. This crate makes those invariants
//! machine-checked at CI time: a comment/string/raw-string-aware Rust
//! [`lexer`], a lightweight item [`scope`] scanner (no `syn` — token-level,
//! like `recipe_scenario::toml`), and a [`rules`] engine with three rule
//! families (determinism, shield coverage, hygiene) driven by a `lint.toml`
//! [`config`] that reuses the scenario crate's TOML parser.
//!
//! Findings are silenced either by a config-level `[[allow]]` (rule + path
//! prefix + reason) or an inline
//! `recipe-lint: allow(<rule>, reason = "…")` comment — and the
//! suppressions are themselves linted: an empty or missing reason is a
//! finding ([`suppress`]).
//!
//! The `recipe-lint` binary walks the workspace, prints human or JSON
//! output and exits `0` (clean), `1` (findings) or `2` (usage/config
//! error); the `lint` CI job gates on it. The workspace itself stays clean:
//! real findings get fixed or explicitly suppressed with reasons.

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;
pub mod suppress;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub use config::{parse_config, Config, PathAllow};
pub use report::{Finding, LintReport};
pub use rules::{rule_by_id, rule_ids, RULES};

/// An analyzer failure (I/O or configuration), distinct from findings.
#[derive(Debug)]
pub struct LintError(pub String);

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LintError {}

/// Lints an in-memory set of `(repo-relative path, source)` files. This is
/// the engine the binary, the fixture tests and the workspace-clean test
/// all share.
pub fn lint_files(files: &[(String, String)], config: &Config) -> LintReport {
    let mut raw: Vec<Finding> = Vec::new();
    let mut domains = Vec::new();
    let mut suppressions: BTreeMap<String, suppress::Suppressions> = BTreeMap::new();

    for (path, source) in files {
        let lexed = lexer::lex(source);
        let scopes = scope::scan(&lexed.tokens);
        let supp = suppress::parse(path, &lexed.comments);
        let analysis = rules::analyze_file(path, &lexed.tokens, &scopes, config);
        raw.extend(analysis.findings);
        raw.extend(supp.findings.iter().cloned());
        domains.extend(analysis.domains);
        suppressions.insert(path.clone(), supp);
    }
    raw.extend(rules::check_domain_uniqueness(&domains));

    // Filter through the suppressions, remembering which ones actually
    // fired so the unused remainder can be reported as stale.
    let mut used_allows = vec![false; config.allows.len()];
    let mut used_inline: BTreeMap<&str, Vec<bool>> = suppressions
        .iter()
        .map(|(path, s)| (path.as_str(), vec![false; s.entries.len()]))
        .collect();
    let mut suppressed = 0usize;
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        if let Some(idx) = config.allow_index_for(&f.rule, &f.file) {
            used_allows[idx] = true;
            suppressed += 1;
        } else if let Some((used, idx)) = suppressions
            .get(&f.file)
            .and_then(|s| s.covering_entry(&f.rule, f.line))
            .and_then(|idx| used_inline.get_mut(f.file.as_str()).map(|u| (u, idx)))
        {
            used[idx] = true;
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }

    // stale-allow: every suppression must still silence something. A
    // directive allowing `stale-allow` itself is exempt — it exists to
    // silence this pass, so "unused" is its steady state and flagging it
    // would never reach a fixpoint.
    let mut stale: Vec<Finding> = Vec::new();
    for (idx, allow) in config.allows.iter().enumerate() {
        if allow.rule != "stale-allow" && !used_allows[idx] {
            stale.push(Finding::new(
                "stale-allow",
                "lint.toml",
                0,
                format!(
                    "[[allow]] of `{}` for `{}` silences no finding — the code it excused has moved on; delete the entry",
                    allow.rule, allow.path
                ),
            ));
        }
    }
    for (path, supp) in &suppressions {
        for (idx, entry) in supp.entries.iter().enumerate() {
            if entry.rule != "stale-allow" && !used_inline[path.as_str()][idx] {
                stale.push(Finding::new(
                    "stale-allow",
                    path,
                    entry.line,
                    format!(
                        "`recipe-lint: {}({})` silences no finding — the code it excused has moved on; delete the comment",
                        if entry.file_scope { "allow-file" } else { "allow" },
                        entry.rule
                    ),
                ));
            }
        }
    }
    // Stale findings ride the normal suppression channel (without feeding
    // back into usage tracking).
    for f in stale {
        let allowed = config.allow_for(&f.rule, &f.file).is_some()
            || suppressions
                .get(&f.file)
                .is_some_and(|s| s.covers(&f.rule, f.line));
        if allowed {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    LintReport {
        files_scanned: files.len(),
        suppressed,
        findings,
    }
}

/// Walks `root` for `.rs` files under the configured scan roots and lints
/// them.
pub fn lint_workspace(root: &Path, config: &Config) -> Result<LintReport, LintError> {
    let files = collect_sources(root, config)?;
    Ok(lint_files(&files, config))
}

/// Loads `lint.toml` from `root` (falling back to defaults when absent)
/// and lints the workspace.
pub fn lint_workspace_at(root: &Path) -> Result<LintReport, LintError> {
    let config_path = root.join("lint.toml");
    let config = if config_path.exists() {
        load_config(&config_path)?
    } else {
        Config::default()
    };
    lint_workspace(root, &config)
}

/// Reads and strictly parses a `lint.toml`.
pub fn load_config(path: &Path) -> Result<Config, LintError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| LintError(format!("cannot read {}: {e}", path.display())))?;
    parse_config(&text).map_err(|e| LintError(format!("{}: {e}", path.display())))
}

/// Collects `(repo-relative path, source)` pairs under the scan roots, in
/// sorted path order (the walk itself must be deterministic).
fn collect_sources(root: &Path, config: &Config) -> Result<Vec<(String, String)>, LintError> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for scan_root in &config.roots {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    let mut rel: Vec<String> = paths
        .iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .filter(|r| !Config::path_matches(r, &config.exclude))
        .collect();
    rel.sort_unstable();
    rel.dedup();
    let mut out = Vec::with_capacity(rel.len());
    for r in rel {
        let text = std::fs::read_to_string(root.join(&r))
            .map_err(|e| LintError(format!("cannot read {r}: {e}")))?;
        out.push((r, text));
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| LintError(format!("cannot list {}: {e}", dir.display())))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| LintError(format!("walk error under {}: {e}", dir.display())))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Never descend into build output or the vendored stand-ins.
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> (String, String) {
        (path.to_string(), src.to_string())
    }

    #[test]
    fn inline_suppression_with_reason_silences_a_finding() {
        let config = Config::default();
        let dirty = lint_files(
            &[file("crates/x/src/lib.rs", "fn f() { g().unwrap(); }")],
            &config,
        );
        assert_eq!(dirty.findings.len(), 1);
        assert_eq!(dirty.suppressed, 0);

        let clean = lint_files(
            &[file(
                "crates/x/src/lib.rs",
                "fn f() {\n    // recipe-lint: allow(unwrap-in-lib, reason = \"g is total\")\n    g().unwrap();\n}",
            )],
            &config,
        );
        assert!(clean.is_clean(), "{:?}", clean.findings);
        assert_eq!(clean.suppressed, 1);
    }

    #[test]
    fn suppression_without_reason_is_itself_a_finding() {
        let report = lint_files(
            &[file(
                "crates/x/src/lib.rs",
                "fn f() {\n    // recipe-lint: allow(unwrap-in-lib)\n    g().unwrap();\n}",
            )],
            &Config::default(),
        );
        // The unwrap stays unsuppressed AND the empty reason is flagged.
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"unwrap-in-lib"));
        assert!(rules.contains(&"suppression-reason"));
    }

    #[test]
    fn config_allow_silences_by_path_prefix() {
        let mut config = Config::default();
        config.allows.push(PathAllow {
            rule: "unwrap-in-lib".into(),
            path: "crates/x/src".into(),
            reason: "sanctioned".into(),
        });
        let report = lint_files(
            &[
                file("crates/x/src/lib.rs", "fn f() { g().unwrap(); }"),
                file("crates/y/src/lib.rs", "fn f() { g().unwrap(); }"),
            ],
            &config,
        );
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].file, "crates/y/src/lib.rs");
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn unused_inline_suppression_is_stale() {
        let report = lint_files(
            &[file(
                "crates/x/src/lib.rs",
                "fn f() {\n    // recipe-lint: allow(unwrap-in-lib, reason = \"g is total\")\n    g()?;\n}",
            )],
            &Config::default(),
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, "stale-allow");
        assert_eq!(report.findings[0].line, 2);
    }

    #[test]
    fn unused_config_allow_is_stale_and_lands_on_lint_toml() {
        let mut config = Config::default();
        config.allows.push(PathAllow {
            rule: "unwrap-in-lib".into(),
            path: "crates/x/src".into(),
            reason: "sanctioned".into(),
        });
        let report = lint_files(&[file("crates/x/src/lib.rs", "fn f() { g(); }")], &config);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, "stale-allow");
        assert_eq!(report.findings[0].file, "lint.toml");
    }

    #[test]
    fn stale_allow_suppressions_are_exempt_from_staleness() {
        // An allow of stale-allow itself is never reported stale (that
        // would regress forever), and it silences the stale finding of a
        // neighbouring dead directive.
        let mut config = Config::default();
        config.allows.push(PathAllow {
            rule: "stale-allow".into(),
            path: "crates/x/src".into(),
            reason: "directive kept for a pending revert".into(),
        });
        let report = lint_files(
            &[file(
                "crates/x/src/lib.rs",
                "fn f() {\n    // recipe-lint: allow(unwrap-in-lib, reason = \"g is total\")\n    g()?;\n}",
            )],
            &config,
        );
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn cross_file_domain_duplicates_are_caught() {
        let report = lint_files(
            &[
                file(
                    "crates/a/src/lib.rs",
                    "const A_MAC_DOMAIN: &[u8] = b\"recipe.batch.v1\";",
                ),
                file(
                    "crates/b/src/lib.rs",
                    "const B_MAC_DOMAIN: &[u8] = b\"recipe.batch.v1\";",
                ),
            ],
            &Config::default(),
        );
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "mac-domain-unique");
        assert_eq!(report.findings[0].file, "crates/b/src/lib.rs");
    }
}

//! Findings and report rendering (human and JSON).

use serde::Serialize;

/// One unsuppressed rule violation.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Rule id (see [`crate::rules::RULES`]).
    pub rule: String,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl Finding {
    /// Builds a finding.
    pub fn new(rule: &str, file: &str, line: usize, message: impl Into<String>) -> Self {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }
}

/// The outcome of a workspace pass.
#[derive(Debug, Serialize)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings silenced by inline or config suppressions.
    pub suppressed: usize,
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "recipe-lint: {} finding(s), {} suppressed, {} file(s) scanned\n",
            self.findings.len(),
            self.suppressed,
            self.files_scanned
        ));
        out
    }

    /// Renders the JSON report (stable schema: `files_scanned`,
    /// `suppressed`, `findings[{rule,file,line,message}]`).
    pub fn json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_both_formats() {
        let report = LintReport {
            files_scanned: 2,
            suppressed: 1,
            findings: vec![Finding::new("unwrap-in-lib", "a.rs", 3, "msg")],
        };
        let human = report.human();
        assert!(human.contains("a.rs:3: [unwrap-in-lib] msg"));
        assert!(human.contains("1 finding(s), 1 suppressed, 2 file(s) scanned"));
        let json = report.json();
        assert!(json.contains("\"rule\""));
        assert!(json.contains("unwrap-in-lib"));
        assert!(!report.is_clean());
    }
}

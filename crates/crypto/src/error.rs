//! Error type shared by every cryptographic operation in the workspace.

use std::fmt;

/// Errors returned by cryptographic primitives.
///
/// The variants are intentionally coarse: callers in the replication layer only ever
/// need to distinguish "the cryptography rejected this input" (drop the message)
/// from "the input was malformed" (protocol bug or attack).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A MAC tag did not verify against the supplied key and message.
    MacMismatch,
    /// A signature did not verify against the supplied public key and message.
    BadSignature,
    /// Ciphertext failed its integrity check and was not decrypted.
    CiphertextTampered,
    /// Input had the wrong length (e.g. a truncated key or tag).
    InvalidLength {
        /// What the caller was trying to parse.
        what: &'static str,
        /// Expected byte length.
        expected: usize,
        /// Actual byte length received.
        actual: usize,
    },
    /// A key could not be parsed from its byte encoding.
    MalformedKey,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::MacMismatch => write!(f, "MAC verification failed"),
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::CiphertextTampered => {
                write!(f, "ciphertext integrity check failed; refusing to decrypt")
            }
            CryptoError::InvalidLength {
                what,
                expected,
                actual,
            } => write!(
                f,
                "invalid length for {what}: expected {expected} bytes, got {actual}"
            ),
            CryptoError::MalformedKey => write!(f, "malformed key encoding"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = CryptoError::InvalidLength {
            what: "mac tag",
            expected: 32,
            actual: 16,
        };
        let text = err.to_string();
        assert!(text.contains("mac tag"));
        assert!(text.contains("32"));
        assert!(text.contains("16"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CryptoError::MacMismatch, CryptoError::MacMismatch);
        assert_ne!(CryptoError::MacMismatch, CryptoError::BadSignature);
    }
}

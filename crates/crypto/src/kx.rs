//! Ephemeral key exchange for attestation secret provisioning.
//!
//! During remote attestation (paper §A.3, "Attestation process") the challenger and
//! the enclave run a Diffie-Hellman exchange; the resulting shared secret protects
//! the secrets (signing keys, channel MAC keys, configuration) the CAS provisions to
//! successfully attested nodes.
//!
//! We implement a hash-based commutative exchange over the same 32-byte secret space
//! used elsewhere in the crate: each party contributes an ephemeral secret, publishes
//! `H(secret)`, and the shared key is `H(sort(H(a)||H(b)) || a)` combined with the
//! peer's transcript via HMAC. This is **not** Diffie-Hellman over a group — the
//! simulated network adversary in this reproduction never sees the exchanged values
//! in a way that would let it exploit the difference (see DESIGN.md, hardware
//! substitutions) — but it exercises the same code path: both sides derive the same
//! channel key without ever transmitting it.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::hash::hash_parts;
use crate::mac::MacKey;
use crate::{CryptoError, KeyMaterial, DIGEST_LEN};

/// An ephemeral key-exchange secret, held privately by one party.
#[derive(Clone)]
pub struct EphemeralSecret {
    secret: [u8; DIGEST_LEN],
}

/// The public half of an ephemeral exchange, sent over the (untrusted) network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KxPublic([u8; DIGEST_LEN]);

/// The shared secret both parties derive; feeds channel key derivation.
#[derive(Clone, PartialEq, Eq)]
pub struct SharedSecret([u8; DIGEST_LEN]);

impl EphemeralSecret {
    /// Samples a fresh ephemeral secret.
    pub fn generate<R: rand::RngCore>(rng: &mut R) -> Self {
        let mut secret = [0u8; DIGEST_LEN];
        rng.fill_bytes(&mut secret);
        EphemeralSecret { secret }
    }

    /// Returns the public value to send to the peer.
    pub fn public(&self) -> KxPublic {
        KxPublic(*hash_parts(&[b"recipe.kx.public", &self.secret]).as_bytes())
    }

    /// Derives the shared secret given the peer's public value.
    ///
    /// Both parties arrive at the same value because the derivation is symmetric in
    /// the two public contributions (they are sorted before hashing) and each party
    /// folds in a value (`pair_digest`) that is a deterministic function of both
    /// publics only.
    pub fn derive_shared(&self, peer: &KxPublic) -> SharedSecret {
        let mine = self.public();
        let (lo, hi) = if mine.0 <= peer.0 {
            (mine.0, peer.0)
        } else {
            (peer.0, mine.0)
        };
        // The "shared" part is a function of both public contributions; mixing in a
        // domain separator keeps it distinct from any other hash usage.
        let pair_digest = hash_parts(&[b"recipe.kx.shared", &lo, &hi]);
        SharedSecret(*pair_digest.as_bytes())
    }
}

impl fmt::Debug for EphemeralSecret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EphemeralSecret(…)")
    }
}

impl KxPublic {
    /// Returns the raw bytes of the public value.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Parses from a slice, validating length.
    pub fn try_from_slice(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != DIGEST_LEN {
            return Err(CryptoError::InvalidLength {
                what: "kx public value",
                expected: DIGEST_LEN,
                actual: bytes.len(),
            });
        }
        let mut out = [0u8; DIGEST_LEN];
        out.copy_from_slice(bytes);
        Ok(KxPublic(out))
    }
}

impl fmt::Debug for KxPublic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: String = self.0[..6].iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "KxPublic({hex}…)")
    }
}

impl SharedSecret {
    /// Derives a channel MAC key from the shared secret, bound to a label
    /// (e.g. `"cas->node:3"`).
    pub fn derive_mac_key(&self, label: &str) -> MacKey {
        MacKey::from_bytes(self.0).derive(label)
    }

    /// Derives a cipher key from the shared secret.
    pub fn derive_cipher_key(&self, label: &str) -> crate::cipher::CipherKey {
        let k = MacKey::from_bytes(self.0).derive(label);
        let mut bytes = [0u8; DIGEST_LEN];
        bytes.copy_from_slice(&k.tag(b"recipe.kx.cipher").as_bytes()[..]);
        crate::cipher::CipherKey::from_bytes(bytes)
    }
}

impl KeyMaterial for SharedSecret {
    fn expose_secret(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for SharedSecret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedSecret(…)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pair() -> (EphemeralSecret, EphemeralSecret) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        (
            EphemeralSecret::generate(&mut rng),
            EphemeralSecret::generate(&mut rng),
        )
    }

    #[test]
    fn both_sides_derive_same_secret() {
        let (alice, bob) = pair();
        let s1 = alice.derive_shared(&bob.public());
        let s2 = bob.derive_shared(&alice.public());
        assert_eq!(s1, s2);
    }

    #[test]
    fn derived_keys_match_on_both_sides() {
        let (alice, bob) = pair();
        let k1 = alice.derive_shared(&bob.public()).derive_mac_key("chan");
        let k2 = bob.derive_shared(&alice.public()).derive_mac_key("chan");
        assert_eq!(k1, k2);
        let tag = k1.tag(b"provisioned secret");
        assert!(k2.verify(b"provisioned secret", &tag).is_ok());
    }

    #[test]
    fn different_pairs_derive_different_secrets() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = EphemeralSecret::generate(&mut rng);
        let b = EphemeralSecret::generate(&mut rng);
        let c = EphemeralSecret::generate(&mut rng);
        let ab = a.derive_shared(&b.public());
        let ac = a.derive_shared(&c.public());
        assert_ne!(ab.expose_secret(), ac.expose_secret());
    }

    #[test]
    fn public_value_does_not_reveal_secret() {
        let (alice, _) = pair();
        assert_ne!(alice.public().as_bytes(), &alice.secret);
    }

    #[test]
    fn labels_separate_derived_keys() {
        let (alice, bob) = pair();
        let shared = alice.derive_shared(&bob.public());
        assert_ne!(shared.derive_mac_key("a"), shared.derive_mac_key("b"));
    }

    #[test]
    fn public_slice_roundtrip() {
        let (alice, _) = pair();
        let p = alice.public();
        assert_eq!(KxPublic::try_from_slice(p.as_bytes()).unwrap(), p);
        assert!(KxPublic::try_from_slice(&[1, 2, 3]).is_err());
    }
}

//! Ed25519 signatures.
//!
//! Signatures provide *transferable* authentication: a quote or client request signed
//! once can be verified by any replica holding the signer's public key, including for
//! forwarded messages (paper §1.2, Property 1). Recipe uses them for
//! attestation quotes (the simulated `EGETKEY`-derived hardware key signs the
//! measurement), for client request certificates, and wherever a proof must be
//! checkable by third parties rather than only the channel peer.

use ed25519_dalek::{Signer, Verifier};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{CryptoError, KeyMaterial};

/// Length of an Ed25519 public key in bytes.
pub const PUBLIC_KEY_LEN: usize = 32;
/// Length of an Ed25519 signature in bytes.
pub const SIGNATURE_LEN: usize = 64;

/// An Ed25519 key pair held inside a (simulated) TEE.
#[derive(Clone)]
pub struct SigningKeyPair {
    signing: ed25519_dalek::SigningKey,
}

impl SigningKeyPair {
    /// Generates a key pair from the supplied RNG.
    pub fn generate<R: rand::RngCore + rand::CryptoRng>(rng: &mut R) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        SigningKeyPair {
            signing: ed25519_dalek::SigningKey::from_bytes(&seed),
        }
    }

    /// Generates a deterministic key pair from a seed.
    ///
    /// Used throughout the simulator so that experiments are reproducible; a given
    /// node id always maps to the same key material.
    pub fn generate_from_seed(seed: u64) -> Self {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&seed.to_le_bytes());
        bytes[8..16].copy_from_slice(&seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_le_bytes());
        bytes[16..24].copy_from_slice(&seed.rotate_left(17).to_le_bytes());
        bytes[24..32].copy_from_slice(&seed.wrapping_add(0xDEAD_BEEF).to_le_bytes());
        SigningKeyPair {
            signing: ed25519_dalek::SigningKey::from_bytes(&bytes),
        }
    }

    /// Restores a key pair from its 32-byte secret seed.
    pub fn from_secret_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != 32 {
            return Err(CryptoError::InvalidLength {
                what: "ed25519 secret key",
                expected: 32,
                actual: bytes.len(),
            });
        }
        let mut seed = [0u8; 32];
        seed.copy_from_slice(bytes);
        Ok(SigningKeyPair {
            signing: ed25519_dalek::SigningKey::from_bytes(&seed),
        })
    }

    /// Signs a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature(self.signing.sign(message).to_bytes())
    }

    /// Returns the corresponding public (verification) key.
    pub fn public(&self) -> PublicKey {
        PublicKey(self.signing.verifying_key().to_bytes())
    }
}

impl KeyMaterial for SigningKeyPair {
    fn expose_secret(&self) -> &[u8] {
        self.signing.as_bytes()
    }
}

impl fmt::Debug for SigningKeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SigningKeyPair(pub={:?})", self.public())
    }
}

/// An Ed25519 public key, safe to distribute to every replica and client.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey([u8; PUBLIC_KEY_LEN]);

impl PublicKey {
    /// Parses a public key from raw bytes.
    pub fn from_bytes(bytes: [u8; PUBLIC_KEY_LEN]) -> Self {
        PublicKey(bytes)
    }

    /// Parses a public key from a slice, validating length.
    pub fn try_from_slice(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != PUBLIC_KEY_LEN {
            return Err(CryptoError::InvalidLength {
                what: "ed25519 public key",
                expected: PUBLIC_KEY_LEN,
                actual: bytes.len(),
            });
        }
        let mut out = [0u8; PUBLIC_KEY_LEN];
        out.copy_from_slice(bytes);
        Ok(PublicKey(out))
    }

    /// Returns the raw key bytes.
    pub fn as_bytes(&self) -> &[u8; PUBLIC_KEY_LEN] {
        &self.0
    }

    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        let key = ed25519_dalek::VerifyingKey::from_bytes(&self.0)
            .map_err(|_| CryptoError::MalformedKey)?;
        let sig = ed25519_dalek::Signature::from_bytes(&signature.0);
        key.verify(message, &sig)
            .map_err(|_| CryptoError::BadSignature)
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: String = self.0[..6].iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "PublicKey({hex}…)")
    }
}

/// A detached Ed25519 signature.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature([u8; SIGNATURE_LEN]);

impl Signature {
    /// Wraps raw signature bytes.
    pub fn from_bytes(bytes: [u8; SIGNATURE_LEN]) -> Self {
        Signature(bytes)
    }

    /// Parses a signature from a slice, validating length.
    pub fn try_from_slice(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != SIGNATURE_LEN {
            return Err(CryptoError::InvalidLength {
                what: "ed25519 signature",
                expected: SIGNATURE_LEN,
                actual: bytes.len(),
            });
        }
        let mut out = [0u8; SIGNATURE_LEN];
        out.copy_from_slice(bytes);
        Ok(Signature(out))
    }

    /// Returns the raw signature bytes.
    pub fn as_bytes(&self) -> &[u8; SIGNATURE_LEN] {
        &self.0
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: String = self.0[..6].iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "Signature({hex}…)")
    }
}

// The 64-byte signature array is serialized by hand as a plain byte sequence
// (the vendored serde stand-in has no `with = "module"` support, and arrays
// this long would otherwise need a const-generic detour).
impl Serialize for Signature {
    fn to_value(&self) -> serde::Value {
        self.0.as_slice().to_value()
    }
}

impl Deserialize for Signature {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let bytes = Vec::<u8>::from_value(v)?;
        Signature::try_from_slice(&bytes)
            .map_err(|_| serde::Error::custom("signature must be 64 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sign_verify_roundtrip() {
        let keys = SigningKeyPair::generate_from_seed(1);
        let sig = keys.sign(b"hello");
        assert!(keys.public().verify(b"hello", &sig).is_ok());
    }

    #[test]
    fn verify_rejects_tampered_message() {
        let keys = SigningKeyPair::generate_from_seed(1);
        let sig = keys.sign(b"hello");
        assert_eq!(
            keys.public().verify(b"hellO", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn verify_rejects_other_signer() {
        let alice = SigningKeyPair::generate_from_seed(1);
        let bob = SigningKeyPair::generate_from_seed(2);
        let sig = alice.sign(b"hello");
        assert_eq!(
            bob.public().verify(b"hello", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn deterministic_seed_generates_same_keys() {
        let a = SigningKeyPair::generate_from_seed(42);
        let b = SigningKeyPair::generate_from_seed(42);
        assert_eq!(a.public(), b.public());
        let c = SigningKeyPair::generate_from_seed(43);
        assert_ne!(a.public(), c.public());
    }

    #[test]
    fn secret_roundtrip() {
        let a = SigningKeyPair::generate_from_seed(7);
        let restored = SigningKeyPair::from_secret_bytes(a.expose_secret()).unwrap();
        assert_eq!(a.public(), restored.public());
        assert!(SigningKeyPair::from_secret_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn slices_validate_length() {
        assert!(PublicKey::try_from_slice(&[0u8; 31]).is_err());
        assert!(Signature::try_from_slice(&[0u8; 63]).is_err());
        let keys = SigningKeyPair::generate_from_seed(9);
        let sig = keys.sign(b"m");
        assert!(Signature::try_from_slice(sig.as_bytes()).is_ok());
        assert!(PublicKey::try_from_slice(keys.public().as_bytes()).is_ok());
    }

    #[test]
    fn signatures_are_transferable() {
        // A third party that only ever saw the public key can verify a forwarded
        // message — the transferable authentication property.
        let signer = SigningKeyPair::generate_from_seed(5);
        let sig = signer.sign(b"forwarded request");
        let forwarded_pubkey = PublicKey::try_from_slice(signer.public().as_bytes()).unwrap();
        assert!(forwarded_pubkey.verify(b"forwarded request", &sig).is_ok());
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_messages(msg in proptest::collection::vec(any::<u8>(), 0..512),
                                        seed in any::<u64>()) {
            let keys = SigningKeyPair::generate_from_seed(seed);
            let sig = keys.sign(&msg);
            prop_assert!(keys.public().verify(&msg, &sig).is_ok());
        }

        #[test]
        fn flipped_signature_bit_rejected(msg in proptest::collection::vec(any::<u8>(), 1..64),
                                          idx in 0usize..64, bit in 0u8..8) {
            let keys = SigningKeyPair::generate_from_seed(11);
            let sig = keys.sign(&msg);
            let mut bytes = *sig.as_bytes();
            bytes[idx] ^= 1 << bit;
            let tampered = Signature::from_bytes(bytes);
            prop_assert!(keys.public().verify(&msg, &tampered).is_err());
        }
    }
}

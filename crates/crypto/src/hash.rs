//! Collision-resistant hashing.
//!
//! Recipe hashes payloads before signing/MACing them (Algorithm 1's
//! `signed_hash`), hashes enclave code to produce measurements, and hashes stored
//! values for integrity verification in the partitioned KV store.

use serde::{Deserialize, Serialize};
use sha2::{Digest as Sha2Digest, Sha256};
use std::fmt;

use crate::DIGEST_LEN;

/// A 256-bit SHA-256 digest.
///
/// `Digest` is `Copy` and ordered so it can be used directly as a map key, a KV-store
/// integrity tag, or an enclave measurement.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Digest([u8; DIGEST_LEN]);

impl Digest {
    /// Wraps raw digest bytes.
    pub const fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }

    /// The all-zero digest, used as a sentinel for "no value yet".
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Returns the digest bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Returns a short hexadecimal prefix, handy for logging.
    pub fn short_hex(&self) -> String {
        self.0[..6].iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Hex-encodes the full digest.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Combines two digests into a new one (`H(a || b)`); used for chaining
    /// measurements and building simple hash chains in tests.
    pub fn combine(&self, other: &Digest) -> Digest {
        let mut hasher = Hasher::new();
        hasher.update(self.as_bytes());
        hasher.update(other.as_bytes());
        hasher.finalize()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Hashes a single byte string with SHA-256.
pub fn sha256(data: &[u8]) -> Digest {
    let mut hasher = Sha256::new();
    hasher.update(data);
    Digest(hasher.finalize().into())
}

/// Hashes the concatenation of several byte strings, length-prefixing each part so
/// that `hash_parts(&[a, b])` and `hash_parts(&[a ++ b])` are distinct.
pub fn hash_parts(parts: &[&[u8]]) -> Digest {
    let mut hasher = Hasher::new();
    for part in parts {
        hasher.update(&(part.len() as u64).to_le_bytes());
        hasher.update(part);
    }
    hasher.finalize()
}

/// Incremental SHA-256 hasher.
///
/// A thin wrapper over [`sha2::Sha256`] that returns Recipe's [`Digest`] type.
#[derive(Clone, Default)]
pub struct Hasher {
    inner: Sha256,
}

impl Hasher {
    /// Creates an empty hasher.
    pub fn new() -> Self {
        Hasher {
            inner: Sha256::new(),
        }
    }

    /// Feeds more data into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(self) -> Digest {
        Digest(self.inner.finalize().into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sha256_matches_known_vector() {
        // SHA-256("abc")
        let digest = sha256(b"abc");
        assert_eq!(
            digest.to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn zero_digest_is_all_zero() {
        assert!(Digest::ZERO.as_bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn incremental_hash_equals_one_shot() {
        let mut hasher = Hasher::new();
        hasher.update(b"hello ");
        hasher.update(b"world");
        assert_eq!(hasher.finalize(), sha256(b"hello world"));
    }

    #[test]
    fn hash_parts_is_not_plain_concatenation() {
        assert_ne!(hash_parts(&[b"ab", b"c"]), hash_parts(&[b"a", b"bc"]));
        assert_ne!(hash_parts(&[b"abc"]), sha256(b"abc"));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert_ne!(a.combine(&b), b.combine(&a));
    }

    #[test]
    fn debug_and_hex_render() {
        let d = sha256(b"xyz");
        assert_eq!(d.to_hex().len(), 64);
        assert!(format!("{d:?}").starts_with("Digest("));
        assert_eq!(d.short_hex().len(), 12);
    }

    proptest! {
        #[test]
        fn hashing_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            prop_assert_eq!(sha256(&data), sha256(&data));
        }

        #[test]
        fn distinct_inputs_rarely_collide(a in proptest::collection::vec(any::<u8>(), 0..64),
                                          b in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assume!(a != b);
            prop_assert_ne!(sha256(&a), sha256(&b));
        }

        #[test]
        fn parts_roundtrip_determinism(parts in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..32), 0..8)) {
            let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
            prop_assert_eq!(hash_parts(&refs), hash_parts(&refs));
        }
    }
}

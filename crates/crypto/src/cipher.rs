//! Authenticated symmetric encryption (encrypt-then-MAC) for Recipe's
//! confidentiality mode.
//!
//! When Recipe runs with confidentiality enabled (paper Figure 5), every byte that
//! leaves the enclave — network payloads and KV values stored in host memory — is
//! encrypted and authenticated. The paper builds on OpenSSL; here we compose the
//! audited primitives we already depend on into a standard encrypt-then-MAC
//! construction:
//!
//! * keystream: `HMAC-SHA-256(k_enc, nonce || counter)` blocks XORed with the
//!   plaintext (a PRF in counter mode);
//! * integrity: `HMAC-SHA-256(k_mac, nonce || ciphertext)` appended as a tag and
//!   checked before any decryption output is released.
//!
//! This is not meant to compete with AES-GCM in throughput; it exists so the
//! confidentiality code path performs *real* encryption work whose cost scales with
//! payload size, which is what the Figure 5 experiment measures.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::mac::MacKey;
use crate::nonce::Nonce;
use crate::{CryptoError, KeyMaterial, DIGEST_LEN};

/// A symmetric cipher key (expands internally into independent encryption and MAC
/// sub-keys).
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CipherKey([u8; DIGEST_LEN]);

impl CipherKey {
    /// Builds a key from raw bytes.
    pub const fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Self {
        CipherKey(bytes)
    }

    /// Generates a fresh key from the supplied RNG.
    pub fn generate<R: rand::RngCore>(rng: &mut R) -> Self {
        let mut bytes = [0u8; DIGEST_LEN];
        rng.fill_bytes(&mut bytes);
        CipherKey(bytes)
    }
}

impl KeyMaterial for CipherKey {
    fn expose_secret(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for CipherKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CipherKey(…)")
    }
}

/// Ciphertext plus the metadata needed to decrypt and authenticate it.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ciphertext {
    /// Per-encryption nonce.
    pub nonce: Nonce,
    /// Encrypted payload bytes.
    pub bytes: Vec<u8>,
    /// Integrity tag over nonce and ciphertext.
    pub tag: [u8; DIGEST_LEN],
}

impl Ciphertext {
    /// Total serialized size in bytes (used by the network cost model).
    pub fn wire_len(&self) -> usize {
        Nonce::LEN + self.bytes.len() + DIGEST_LEN
    }
}

impl fmt::Debug for Ciphertext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ciphertext({} bytes)", self.bytes.len())
    }
}

/// Stateless encrypt-then-MAC cipher.
#[derive(Clone, Debug)]
pub struct Cipher {
    enc_key: MacKey,
    mac_key: MacKey,
}

impl Cipher {
    /// Creates a cipher from a single master key, deriving independent encryption
    /// and authentication sub-keys.
    pub fn new(key: &CipherKey) -> Self {
        let master = MacKey::from_bytes(
            // recipe-lint: allow(unwrap-in-lib, reason = "CipherKey wraps a 32-byte derived digest by construction")
            <[u8; DIGEST_LEN]>::try_from(key.expose_secret()).expect("cipher key is 32 bytes"),
        );
        Cipher {
            enc_key: master.derive("recipe.cipher.enc"),
            mac_key: master.derive("recipe.cipher.mac"),
        }
    }

    /// Encrypts and authenticates `plaintext` using `nonce`.
    ///
    /// The caller is responsible for nonce uniqueness; Recipe derives nonces from the
    /// channel's trusted monotonic counter, which guarantees it.
    pub fn seal(&self, nonce: Nonce, plaintext: &[u8]) -> Ciphertext {
        let mut bytes = plaintext.to_vec();
        self.apply_keystream(&nonce, &mut bytes);
        let tag = self
            .mac_key
            .tag_parts(&[nonce.as_bytes(), &bytes])
            .as_bytes()
            .to_owned();
        Ciphertext { nonce, bytes, tag }
    }

    /// Verifies and decrypts `ciphertext`, returning the plaintext.
    pub fn open(&self, ciphertext: &Ciphertext) -> Result<Vec<u8>, CryptoError> {
        let expected = self
            .mac_key
            .tag_parts(&[ciphertext.nonce.as_bytes(), &ciphertext.bytes]);
        if expected.as_bytes() != &ciphertext.tag {
            return Err(CryptoError::CiphertextTampered);
        }
        let mut bytes = ciphertext.bytes.clone();
        self.apply_keystream(&ciphertext.nonce, &mut bytes);
        Ok(bytes)
    }

    fn apply_keystream(&self, nonce: &Nonce, data: &mut [u8]) {
        let mut counter: u64 = 0;
        let mut offset = 0usize;
        while offset < data.len() {
            let block = self
                .enc_key
                .tag_parts(&[nonce.as_bytes(), &counter.to_le_bytes()]);
            let block_bytes = block.as_bytes();
            let take = usize::min(DIGEST_LEN, data.len() - offset);
            for i in 0..take {
                data[offset + i] ^= block_bytes[i];
            }
            offset += take;
            counter += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn cipher() -> Cipher {
        Cipher::new(&CipherKey::from_bytes([3u8; 32]))
    }

    #[test]
    fn seal_open_roundtrip() {
        let c = cipher();
        let nonce = Nonce::from_u128(1);
        let ct = c.seal(nonce, b"secret value");
        assert_eq!(c.open(&ct).unwrap(), b"secret value");
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let c = cipher();
        let ct = c.seal(Nonce::from_u128(1), b"secret value");
        assert_ne!(ct.bytes, b"secret value");
    }

    #[test]
    fn distinct_nonces_give_distinct_ciphertexts() {
        let c = cipher();
        let a = c.seal(Nonce::from_u128(1), b"same plaintext");
        let b = c.seal(Nonce::from_u128(2), b"same plaintext");
        assert_ne!(a.bytes, b.bytes);
    }

    #[test]
    fn tampering_is_detected() {
        let c = cipher();
        let mut ct = c.seal(Nonce::from_u128(7), b"payload payload payload");
        ct.bytes[3] ^= 0xFF;
        assert_eq!(c.open(&ct), Err(CryptoError::CiphertextTampered));
    }

    #[test]
    fn tampered_nonce_is_detected() {
        let c = cipher();
        let mut ct = c.seal(Nonce::from_u128(7), b"payload");
        ct.nonce = Nonce::from_u128(8);
        assert_eq!(c.open(&ct), Err(CryptoError::CiphertextTampered));
    }

    #[test]
    fn wrong_key_cannot_open() {
        let ct = cipher().seal(Nonce::from_u128(1), b"payload");
        let other = Cipher::new(&CipherKey::from_bytes([4u8; 32]));
        assert!(other.open(&ct).is_err());
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let c = cipher();
        let ct = c.seal(Nonce::from_u128(1), b"");
        assert_eq!(ct.wire_len(), Nonce::LEN + DIGEST_LEN);
        assert_eq!(c.open(&ct).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn generated_keys_are_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let a = CipherKey::generate(&mut rng);
        let b = CipherKey::generate(&mut rng);
        assert_ne!(a, b);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_payloads(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                        nonce in any::<u128>()) {
            let c = cipher();
            let ct = c.seal(Nonce::from_u128(nonce), &data);
            prop_assert_eq!(c.open(&ct).unwrap(), data);
        }

        #[test]
        fn bit_flips_always_detected(data in proptest::collection::vec(any::<u8>(), 1..512),
                                     idx in any::<usize>(), bit in 0u8..8) {
            let c = cipher();
            let mut ct = c.seal(Nonce::from_u128(99), &data);
            let i = idx % ct.bytes.len();
            ct.bytes[i] ^= 1 << bit;
            prop_assert!(c.open(&ct).is_err());
        }
    }
}

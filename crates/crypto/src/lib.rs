//! Cryptographic substrate for the Recipe replication library.
//!
//! Recipe's security argument rests on three classes of primitives (paper §3.1,
//! "Cryptographic model"):
//!
//! * **Collision-resistant hashing** — used to bind message payloads to their
//!   authentication tags and to compute enclave measurements
//!   ([`hash::Digest`], [`hash::sha256`]).
//! * **Unforgeable authentication** — message authentication codes shared between
//!   attested endpoints ([`mac`]) and asymmetric signatures for attestation quotes
//!   and client requests ([`sig`]).
//! * **Confidentiality** — an encrypt-then-MAC stream cipher used when Recipe runs
//!   in confidential mode ([`cipher`]).
//!
//! The crate wraps audited implementations (`sha2`, `hmac`, `ed25519-dalek`) behind
//! small, purpose-named types so the rest of the workspace never touches raw
//! byte-array crypto APIs directly. All key material lives in dedicated newtypes that
//! implement [`zeroize-on-drop`-style](KeyMaterial) best-effort clearing.
//!
//! # Example
//!
//! ```
//! use recipe_crypto::{mac::MacKey, sig::SigningKeyPair};
//!
//! // Transferable authentication: sign once, verify anywhere.
//! let keys = SigningKeyPair::generate_from_seed(7);
//! let sig = keys.sign(b"replicate kv #42");
//! assert!(keys.public().verify(b"replicate kv #42", &sig).is_ok());
//!
//! // Channel authentication between two attested endpoints.
//! let key = MacKey::from_bytes([0x41; 32]);
//! let tag = key.tag(b"payload");
//! assert!(key.verify(b"payload", &tag).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cipher;
pub mod error;
pub mod hash;
pub mod kx;
pub mod mac;
pub mod nonce;
pub mod sig;

pub use cipher::{Cipher, CipherKey, Ciphertext};
pub use error::CryptoError;
pub use hash::{hash_parts, sha256, Digest, Hasher};
pub use kx::{EphemeralSecret, KxPublic, SharedSecret};
pub use mac::{MacKey, MacTag};
pub use nonce::Nonce;
pub use sig::{PublicKey, Signature, SigningKeyPair};

/// Marker trait for secret key material.
///
/// Types implementing this trait hold secrets that must never be logged or serialized
/// in plaintext outside of a (simulated) enclave. The trait exists mainly as
/// documentation and to let generic code (e.g. the sealed-storage API in
/// `recipe-tee`) constrain what it will accept.
pub trait KeyMaterial {
    /// Returns the raw bytes of the secret.
    ///
    /// Callers must treat the returned slice as sensitive; it is exposed only so the
    /// sealing layer can encrypt it for persistence.
    fn expose_secret(&self) -> &[u8];
}

/// Number of bytes in every digest, MAC tag, and symmetric key used by Recipe.
pub const DIGEST_LEN: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_len_matches_sha256() {
        assert_eq!(DIGEST_LEN, sha256(b"x").as_bytes().len());
    }
}

//! Nonces for attestation challenges and cipher invocations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 128-bit nonce.
///
/// Attestation uses random nonces to guarantee quote freshness (Algorithm 2's
/// `generate_nonce()`); the cipher uses counter-derived nonces to guarantee keystream
/// uniqueness per message.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Nonce([u8; Nonce::LEN]);

impl Nonce {
    /// Nonce length in bytes.
    pub const LEN: usize = 16;

    /// Builds a nonce from raw bytes.
    pub const fn from_bytes(bytes: [u8; Nonce::LEN]) -> Self {
        Nonce(bytes)
    }

    /// Builds a nonce from a 128-bit integer (e.g. `view << 64 | counter`).
    pub const fn from_u128(value: u128) -> Self {
        Nonce(value.to_le_bytes())
    }

    /// Builds a nonce from a `(view, counter)` pair, the scheme Recipe uses to derive
    /// unique cipher nonces from its trusted channel counters.
    pub fn from_view_counter(view: u64, counter: u64) -> Self {
        Nonce::from_u128(((view as u128) << 64) | counter as u128)
    }

    /// Samples a random nonce from the supplied RNG (attestation challenges).
    pub fn random<R: rand::RngCore>(rng: &mut R) -> Self {
        let mut bytes = [0u8; Nonce::LEN];
        rng.fill_bytes(&mut bytes);
        Nonce(bytes)
    }

    /// Returns the raw nonce bytes.
    pub fn as_bytes(&self) -> &[u8; Nonce::LEN] {
        &self.0
    }

    /// Interprets the nonce as a 128-bit little-endian integer.
    pub fn as_u128(&self) -> u128 {
        u128::from_le_bytes(self.0)
    }
}

impl fmt::Debug for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nonce({:#x})", self.as_u128())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn u128_roundtrip() {
        let n = Nonce::from_u128(0xDEAD_BEEF_0123);
        assert_eq!(n.as_u128(), 0xDEAD_BEEF_0123);
    }

    #[test]
    fn view_counter_nonces_are_unique_per_pair() {
        let a = Nonce::from_view_counter(1, 5);
        let b = Nonce::from_view_counter(1, 6);
        let c = Nonce::from_view_counter(2, 5);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn random_nonces_depend_on_rng_seed() {
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(1);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(1);
        let mut rng3 = rand::rngs::StdRng::seed_from_u64(2);
        assert_eq!(Nonce::random(&mut rng1), Nonce::random(&mut rng2));
        assert_ne!(Nonce::random(&mut rng1), Nonce::random(&mut rng3));
    }

    #[test]
    fn bytes_roundtrip() {
        let n = Nonce::from_bytes([9u8; 16]);
        assert_eq!(n.as_bytes(), &[9u8; 16]);
    }
}

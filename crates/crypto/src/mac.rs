//! Message authentication codes (HMAC-SHA-256).
//!
//! After remote attestation, every pair of Recipe endpoints shares a channel MAC key
//! provisioned by the CAS. `shield_request` computes an HMAC over
//! `payload || view || cq || cnt_cq` (paper §3.2, Algorithm 1); `verify_request`
//! recomputes and compares it in constant time.

use hmac::{Hmac, Mac};
use serde::{Deserialize, Serialize};
use sha2::Sha256;
use std::fmt;

use crate::{CryptoError, KeyMaterial, DIGEST_LEN};

type HmacSha256 = Hmac<Sha256>;

/// A 256-bit symmetric MAC key shared between two attested endpoints.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacKey([u8; DIGEST_LEN]);

impl MacKey {
    /// Builds a key from raw bytes (e.g. bytes unsealed from enclave storage or
    /// derived from a key-exchange shared secret).
    pub const fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Self {
        MacKey(bytes)
    }

    /// Derives a fresh, unpredictable key from the supplied RNG.
    pub fn generate<R: rand::RngCore>(rng: &mut R) -> Self {
        let mut bytes = [0u8; DIGEST_LEN];
        rng.fill_bytes(&mut bytes);
        MacKey(bytes)
    }

    /// Derives a sub-key bound to a label, so one provisioned secret can back several
    /// independent channels (`derive("cq:3->5")`, `derive("values")`, …).
    pub fn derive(&self, label: &str) -> MacKey {
        let tag = self.tag(label.as_bytes());
        MacKey(tag.0)
    }

    /// Computes the HMAC tag over `message`.
    pub fn tag(&self, message: &[u8]) -> MacTag {
        let mut mac = HmacSha256::new_from_slice(&self.0).expect("HMAC accepts any key length");
        mac.update(message);
        let out = mac.finalize().into_bytes();
        let mut bytes = [0u8; DIGEST_LEN];
        bytes.copy_from_slice(&out);
        MacTag(bytes)
    }

    /// Computes the HMAC tag over several length-prefixed parts, mirroring
    /// [`crate::hash::hash_parts`].
    pub fn tag_parts(&self, parts: &[&[u8]]) -> MacTag {
        let mut mac = HmacSha256::new_from_slice(&self.0).expect("HMAC accepts any key length");
        for part in parts {
            mac.update(&(part.len() as u64).to_le_bytes());
            mac.update(part);
        }
        let out = mac.finalize().into_bytes();
        let mut bytes = [0u8; DIGEST_LEN];
        bytes.copy_from_slice(&out);
        MacTag(bytes)
    }

    /// Verifies that `tag` authenticates `message` under this key.
    ///
    /// Verification is constant-time in the tag comparison (delegated to the `hmac`
    /// crate's `verify_slice`).
    pub fn verify(&self, message: &[u8], tag: &MacTag) -> Result<(), CryptoError> {
        let mut mac = HmacSha256::new_from_slice(&self.0).expect("HMAC accepts any key length");
        mac.update(message);
        mac.verify_slice(&tag.0)
            .map_err(|_| CryptoError::MacMismatch)
    }

    /// Verifies a tag computed with [`MacKey::tag_parts`].
    pub fn verify_parts(&self, parts: &[&[u8]], tag: &MacTag) -> Result<(), CryptoError> {
        let mut mac = HmacSha256::new_from_slice(&self.0).expect("HMAC accepts any key length");
        for part in parts {
            mac.update(&(part.len() as u64).to_le_bytes());
            mac.update(part);
        }
        mac.verify_slice(&tag.0)
            .map_err(|_| CryptoError::MacMismatch)
    }
}

impl KeyMaterial for MacKey {
    fn expose_secret(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for MacKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key bytes.
        write!(f, "MacKey(…)")
    }
}

/// A 256-bit HMAC tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacTag([u8; DIGEST_LEN]);

impl MacTag {
    /// Wraps raw tag bytes received off the wire.
    pub const fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Self {
        MacTag(bytes)
    }

    /// Returns the tag bytes (for serialization onto the wire).
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Parses a tag from a byte slice.
    pub fn try_from_slice(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != DIGEST_LEN {
            return Err(CryptoError::InvalidLength {
                what: "mac tag",
                expected: DIGEST_LEN,
                actual: bytes.len(),
            });
        }
        let mut out = [0u8; DIGEST_LEN];
        out.copy_from_slice(bytes);
        Ok(MacTag(out))
    }
}

impl fmt::Debug for MacTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex: String = self.0[..6].iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "MacTag({hex}…)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn key() -> MacKey {
        MacKey::from_bytes([7u8; 32])
    }

    #[test]
    fn tag_then_verify_succeeds() {
        let tag = key().tag(b"payload");
        assert!(key().verify(b"payload", &tag).is_ok());
    }

    #[test]
    fn verify_rejects_modified_message() {
        let tag = key().tag(b"payload");
        assert_eq!(
            key().verify(b"Payload", &tag),
            Err(CryptoError::MacMismatch)
        );
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let tag = key().tag(b"payload");
        let other = MacKey::from_bytes([9u8; 32]);
        assert_eq!(
            other.verify(b"payload", &tag),
            Err(CryptoError::MacMismatch)
        );
    }

    #[test]
    fn tag_parts_is_position_sensitive() {
        let k = key();
        assert_ne!(k.tag_parts(&[b"ab", b"c"]), k.tag_parts(&[b"a", b"bc"]));
    }

    #[test]
    fn derive_produces_distinct_independent_keys() {
        let k = key();
        let a = k.derive("channel:1");
        let b = k.derive("channel:2");
        assert_ne!(a, b);
        assert_ne!(a, k);
        // Deterministic.
        assert_eq!(a, k.derive("channel:1"));
    }

    #[test]
    fn generate_uses_rng() {
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(1);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(MacKey::generate(&mut rng1), MacKey::generate(&mut rng2));
        let mut rng3 = rand::rngs::StdRng::seed_from_u64(2);
        assert_ne!(MacKey::generate(&mut rng1), MacKey::generate(&mut rng3));
    }

    #[test]
    fn tag_slice_roundtrip_and_length_check() {
        let tag = key().tag(b"x");
        let parsed = MacTag::try_from_slice(tag.as_bytes()).unwrap();
        assert_eq!(parsed, tag);
        assert!(matches!(
            MacTag::try_from_slice(&[0u8; 5]),
            Err(CryptoError::InvalidLength { .. })
        ));
    }

    #[test]
    fn debug_does_not_leak_key() {
        assert_eq!(format!("{:?}", key()), "MacKey(…)");
    }

    proptest! {
        #[test]
        fn roundtrip_any_message(msg in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let k = key();
            let tag = k.tag(&msg);
            prop_assert!(k.verify(&msg, &tag).is_ok());
        }

        #[test]
        fn tampered_message_rejected(msg in proptest::collection::vec(any::<u8>(), 1..256),
                                     flip_idx in 0usize..256, flip_bit in 0u8..8) {
            let k = key();
            let tag = k.tag(&msg);
            let mut tampered = msg.clone();
            let idx = flip_idx % tampered.len();
            tampered[idx] ^= 1 << flip_bit;
            prop_assume!(tampered != msg);
            prop_assert!(k.verify(&tampered, &tag).is_err());
        }

        #[test]
        fn parts_verify_roundtrip(parts in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..6)) {
            let k = key();
            let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
            let tag = k.tag_parts(&refs);
            prop_assert!(k.verify_parts(&refs, &tag).is_ok());
        }
    }
}

//! Criterion bench for the Figure 6a experiment (native vs Recipe-transformed Raft).
use criterion::{criterion_group, criterion_main, Criterion};
use recipe_bench::{run_protocol, ExperimentConfig, ProtocolKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a_tee_overheads");
    group.sample_size(10);
    for kind in [ProtocolKind::NativeRaft, ProtocolKind::RRaft] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                run_protocol(&ExperimentConfig {
                    protocol: kind,
                    operations: 300,
                    ..ExperimentConfig::default()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

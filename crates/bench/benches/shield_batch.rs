//! Microbenchmark of the amortized shield/verify pipeline: one `shield_batch`
//! plus `verify_batch` round per iteration, at batch sizes 1, 16 and 64
//! (256 B ops), plaintext and confidential. Compare against
//! `shield_and_verify_256B` in `micro_primitives` to see the per-op
//! amortization.
use criterion::{criterion_group, criterion_main, Criterion};
use recipe_core::{AuthLayer, BatchOp};
use recipe_crypto::{CipherKey, MacKey};
use recipe_net::NodeId;
use recipe_tee::{Enclave, EnclaveConfig, EnclaveId};

fn shield_pair(confidential: bool) -> (AuthLayer, AuthLayer) {
    let master = MacKey::from_bytes([9u8; 32]);
    let mut e1 = Enclave::launch(EnclaveId(1), EnclaveConfig::new("code", 1));
    let mut e2 = Enclave::launch(EnclaveId(2), EnclaveConfig::new("code", 2));
    for label in ["cq:1->2", "cq:2->1"] {
        e1.provision_mac_key(label, master.derive(label)).unwrap();
        e2.provision_mac_key(label, master.derive(label)).unwrap();
    }
    if confidential {
        let key = CipherKey::from_bytes([3u8; 32]);
        e1.provision_cipher_key(recipe_core::auth::CIPHER_LABEL, key.clone())
            .unwrap();
        e2.provision_cipher_key(recipe_core::auth::CIPHER_LABEL, key)
            .unwrap();
    }
    (
        AuthLayer::new(NodeId(1), e1, confidential),
        AuthLayer::new(NodeId(2), e2, confidential),
    )
}

fn bench(c: &mut Criterion) {
    for confidential in [false, true] {
        let mode = if confidential { "conf" } else { "plain" };
        for ops in [1usize, 16, 64] {
            let name = format!("shield_batch_{mode}_{ops}x256B");
            c.bench_function(&name, |b| {
                let (mut tx, mut rx) = shield_pair(confidential);
                let batch: Vec<BatchOp> =
                    (0..ops).map(|_| BatchOp::new(1, vec![0u8; 256])).collect();
                b.iter(|| {
                    let frame = tx.shield_batch(NodeId(2), &batch).unwrap();
                    assert!(rx.verify_batch(frame).is_accept());
                })
            });
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

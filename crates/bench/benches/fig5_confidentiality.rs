//! Criterion bench for the Figure 5 experiment (confidential vs plain R-CR).
use criterion::{criterion_group, criterion_main, Criterion};
use recipe_bench::{run_protocol, ExperimentConfig, ProtocolKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_confidentiality");
    group.sample_size(10);
    for (label, confidential) in [("plain", false), ("confidential", true)] {
        group.bench_function(format!("R-CR_{label}"), |b| {
            b.iter(|| {
                run_protocol(&ExperimentConfig {
                    protocol: ProtocolKind::RChain,
                    confidential,
                    operations: 300,
                    ..ExperimentConfig::default()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for the Figure 3 experiment (value-size sweep for R-Raft vs PBFT).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recipe_bench::{run_protocol, ExperimentConfig, ProtocolKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_value_size");
    group.sample_size(10);
    for size in [256usize, 1024, 4096] {
        for kind in [ProtocolKind::RRaft, ProtocolKind::Pbft] {
            group.bench_with_input(BenchmarkId::new(kind.name(), size), &size, |b, &size| {
                b.iter(|| {
                    run_protocol(&ExperimentConfig {
                        protocol: kind,
                        read_ratio: 0.9,
                        value_size: size,
                        operations: 300,
                        ..ExperimentConfig::default()
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Microbenchmarks of Recipe's core primitives: shield/verify, the partitioned KV
//! store and the skiplist index.
use criterion::{criterion_group, criterion_main, Criterion};
use recipe_core::{AuthLayer, Membership};
use recipe_crypto::MacKey;
use recipe_kv::{PartitionedKvStore, SkipList, StoreConfig, Timestamp};
use recipe_net::NodeId;
use recipe_tee::{Enclave, EnclaveConfig, EnclaveId};

fn shield_pair() -> (AuthLayer, AuthLayer) {
    let master = MacKey::from_bytes([9u8; 32]);
    let mut e1 = Enclave::launch(EnclaveId(1), EnclaveConfig::new("code", 1));
    let mut e2 = Enclave::launch(EnclaveId(2), EnclaveConfig::new("code", 2));
    for label in ["cq:1->2", "cq:2->1"] {
        e1.provision_mac_key(label, master.derive(label)).unwrap();
        e2.provision_mac_key(label, master.derive(label)).unwrap();
    }
    let _ = Membership::of_size(3, 1);
    (
        AuthLayer::new(NodeId(1), e1, false),
        AuthLayer::new(NodeId(2), e2, false),
    )
}

fn bench(c: &mut Criterion) {
    c.bench_function("shield_and_verify_256B", |b| {
        let (mut tx, mut rx) = shield_pair();
        let payload = vec![0u8; 256];
        b.iter(|| {
            let msg = tx.shield(NodeId(2), 1, &payload).unwrap();
            assert!(rx.verify(&msg).is_accept());
        })
    });

    c.bench_function("kv_write_then_get_256B", |b| {
        let mut store = PartitionedKvStore::new(StoreConfig::default());
        let value = vec![0u8; 256];
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("key-{}", i % 1000);
            store
                .write(key.as_bytes(), &value, Timestamp::new(i, 0))
                .unwrap();
            store.get(key.as_bytes()).unwrap();
        })
    });

    c.bench_function("skiplist_insert_lookup", |b| {
        let mut list: SkipList<u64> = SkipList::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("key-{}", i % 4096);
            list.insert(key.as_bytes(), i);
            list.get(key.as_bytes());
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for the Table 4 attestation paths (real attestation crypto;
//! reported latency uses the calibrated service model).
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_attestation");
    group.sample_size(10);
    group.bench_function("cas_and_ias_10_rounds", |b| {
        b.iter(|| recipe_bench::table4_attestation(10))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for the Figure 6b network-stack model.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("fig6b_network_sweep", |b| {
        b.iter(recipe_bench::fig6b_network)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for the Figure 4 experiment (one representative R/W ratio per
//! protocol; the full sweep lives in the `fig4_rw_ratio` binary).
use criterion::{criterion_group, criterion_main, Criterion};
use recipe_bench::{run_protocol, ExperimentConfig, ProtocolKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_rw_ratio_90R");
    group.sample_size(10);
    for kind in [
        ProtocolKind::Pbft,
        ProtocolKind::RRaft,
        ProtocolKind::RChain,
        ProtocolKind::RAbd,
        ProtocolKind::RAllConcur,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                run_protocol(&ExperimentConfig {
                    protocol: kind,
                    read_ratio: 0.9,
                    operations: 300,
                    ..ExperimentConfig::default()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Runs the perf-gate smoke sweeps by auto-discovery: every
//! `BENCH_<name>.json` baseline gets its registered experiment executed
//! in-process at the smoke operation count, and the fresh summary lands in
//! the output directory for `perf_gate` to compare.
//!
//! Usage: `perf_smoke <baseline_dir> <out_dir>`
//!
//! Adding a baseline file without registering a runner here is an error (exit
//! 2) — the gate must never silently skip a baseline it cannot reproduce.

use recipe_bench::{write_summary, BenchSummary};

struct Entry {
    /// Baseline stem: `BENCH_<name>.json`.
    name: &'static str,
    /// Committed-operation count for the CI smoke run (matches the old
    /// hand-listed workflow steps, so the checked-in baselines keep
    /// reproducing bit-for-bit).
    smoke_ops: usize,
    run: fn(usize) -> BenchSummary,
}

const REGISTRY: &[Entry] = &[
    Entry {
        name: "batching",
        smoke_ops: 80,
        run: |ops| recipe_bench::batching_summary(&recipe_bench::fig_batching_report(ops)),
    },
    Entry {
        name: "rebalance",
        smoke_ops: 3200,
        run: |ops| recipe_bench::rebalance_summary(&recipe_bench::fig_rebalance(ops)),
    },
    Entry {
        name: "confidential_policy",
        smoke_ops: 800,
        run: |ops| {
            recipe_bench::confidential_policy_summary(&recipe_bench::fig_confidential_policy(ops))
        },
    },
    Entry {
        name: "txn",
        smoke_ops: 600,
        run: |ops| recipe_bench::txn_summary(&recipe_bench::fig_txn(ops)),
    },
    Entry {
        name: "failover",
        smoke_ops: 2400,
        run: |ops| recipe_bench::failover_summary(&recipe_bench::fig_failover(ops)),
    },
    Entry {
        name: "tenancy",
        smoke_ops: 1500,
        run: |ops| recipe_bench::tenancy_summary(&recipe_bench::fig_tenancy(ops)),
    },
];

fn main() {
    let mut args = std::env::args().skip(1);
    let baseline_dir = args
        .next()
        .expect("usage: perf_smoke <baseline_dir> <out_dir>");
    let out_dir = args
        .next()
        .expect("usage: perf_smoke <baseline_dir> <out_dir>");
    std::fs::create_dir_all(&out_dir).expect("output dir created");

    let mut stems: Vec<String> = std::fs::read_dir(&baseline_dir)
        .unwrap_or_else(|err| panic!("cannot list {baseline_dir}: {err}"))
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter_map(|name| {
            name.strip_prefix("BENCH_")
                .and_then(|rest| rest.strip_suffix(".json"))
                .map(str::to_string)
        })
        .collect();
    stems.sort();
    assert!(
        !stems.is_empty(),
        "no BENCH_*.json baselines in {baseline_dir}"
    );

    for stem in &stems {
        let Some(entry) = REGISTRY.iter().find(|e| e.name == stem) else {
            eprintln!(
                "BENCH_{stem}.json has no registered runner in perf_smoke \
                 (crates/bench/src/bin/perf_smoke.rs): the perf gate cannot reproduce it"
            );
            std::process::exit(2);
        };
        println!("== {stem} (smoke: {} ops) ==", entry.smoke_ops);
        let summary = (entry.run)(entry.smoke_ops);
        let path = format!("{out_dir}/BENCH_{stem}.json");
        write_summary(&path, &summary).expect("summary written");
        println!("summary written to {path}");
    }
    println!("\nperf_smoke: {} summaries regenerated", stems.len());
}

//! Regenerates the multi-tenant noisy-neighbour experiment: three quiet
//! tenants establish a solo baseline, a fourth joins with closed-loop demand
//! ~10× the quota it is granted, and the gateway's deterministic token
//! bucket defers the excess before it reaches the router — the quiet
//! tenants' p99 stays within 10% of the solo baseline.
//!
//! Arguments: `[operations] [summary_json_path]` — the first overrides the
//! committed-operation count (default 1500; CI passes a smoke value), the
//! second writes the machine-readable `BENCH_*.json` summary the perf gate
//! compares against `crates/bench/baselines/`.
fn main() {
    let operations = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(1_500);
    let report = recipe_bench::fig_tenancy(operations);
    recipe_bench::print_rows(
        "Multi-tenant gateway: noisy-neighbour containment via token-bucket admission",
        &report.rows,
    );
    println!(
        "\nnoisy tenant clamped to {} ops/s; quiet tenants' p99 {:.1} us -> {:.1} us \
         ({:+.1}%, containment bound < +10%)",
        report.noisy_quota_ops_per_sec,
        report.solo.total.p99_latency_us,
        report.contained.total.p99_latency_us,
        report.p99_degradation * 100.0,
    );
    println!("per-tenant admission accounting (contended run):");
    for t in &report.contained.gateway.tenants {
        println!(
            "  {:<8} admitted {:>6}  throttled {:>6}  rejected {:>4}  committed ops {:>6}",
            t.tenant, t.admitted, t.throttled, t.rejected, t.committed_ops
        );
    }
    let summary = recipe_bench::tenancy_summary(&report);
    println!("\n{}", serde_json::to_string_pretty(&summary).unwrap());
    if let Some(path) = std::env::args().nth(2) {
        recipe_bench::write_summary(&path, &summary).expect("summary written");
        println!("summary written to {path}");
    }
}

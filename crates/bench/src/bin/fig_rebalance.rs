//! Regenerates the online-rebalancing experiment: two R-Raft shards under a
//! workload that turns skewed mid-run; the controller migrates the hot range
//! and aggregate throughput recovers to the pre-skew level.
//!
//! Arguments: `[operations] [summary_json_path]` — the first overrides the
//! committed-operation count (default 3200; CI passes a smoke value), the
//! second writes the machine-readable `BENCH_*.json` summary the perf gate
//! compares against `crates/bench/baselines/`.
fn main() {
    let operations = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(3_200);
    let report = recipe_bench::fig_rebalance(operations);
    recipe_bench::print_rows(
        "Online rebalancing: R-Raft 2 shards, skewed hot range migrated to the idle shard",
        &report.rows,
    );
    let m = &report.stats.migration;
    println!(
        "\nmigrations: {} (snapshot {} entries / {} wire B, catch-up {} entries / {} rounds, \
         {} redirects, {} refusals, cutover at {:.1} ms, router epoch {})",
        m.migrations_completed,
        m.snapshot_entries,
        m.snapshot_bytes,
        m.catchup_entries,
        m.catchup_rounds,
        m.redirects,
        m.refusals,
        m.last_cutover_ns as f64 / 1e6,
        m.router_version,
    );
    println!("throughput timeline (commits per 5 ms bucket):");
    for bucket in &report.stats.timeline {
        println!(
            "  {:>6.1} ms  {:>5}  {}",
            bucket.end_ns as f64 / 1e6,
            bucket.committed,
            "#".repeat((bucket.committed / 8) as usize)
        );
    }
    let summary = recipe_bench::rebalance_summary(&report);
    println!("\n{}", serde_json::to_string_pretty(&summary).unwrap());
    if let Some(path) = std::env::args().nth(2) {
        recipe_bench::write_summary(&path, &summary).expect("summary written");
        println!("summary written to {path}");
    }
}

//! Regenerates Figure 6b: network-stack goodput (Gb/s) vs payload size.
fn main() {
    println!("=== Figure 6b: network stack goodput (Gb/s) ===");
    println!("{:<20} {:>10} {:>12}", "stack", "payload(B)", "Gb/s");
    for (stack, size, gbps) in recipe_bench::fig6b_network() {
        println!("{stack:<20} {size:>10} {gbps:>12.2}");
    }
}

//! Regenerates the §B.3 Recipe-vs-Damysus comparison.
fn main() {
    let rows = recipe_bench::damysus_compare(1_500);
    recipe_bench::print_rows(
        "Recipe vs Damysus (speedup relative to Damysus @ 256 B)",
        &rows,
    );
    println!("\n{}", serde_json::to_string_pretty(&rows).unwrap());
}

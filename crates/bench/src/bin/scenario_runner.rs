//! Runs a declarative scenario file through the unified sharded driver and
//! checks its declared expectations.
//!
//! Usage: `scenario_runner <scenario.{toml,json}> [summary_json_path]
//! [telemetry_dir]`
//!
//! Loads the scenario (strict parsing: unknown keys and contradictory knobs
//! fail with the offending field named), runs it once per declared protocol,
//! prints per-protocol statistics, and exits non-zero if any expectation is
//! violated. With `summary_json_path`, writes the usual machine-readable
//! `BENCH_`-style summary; with `telemetry_dir`, exports each protocol's
//! telemetry as `<scenario>_<protocol>.jsonl` (the artifact CI uploads when a
//! scenario leg fails).

use recipe_bench::{metric_slug, write_summary, BenchMetric, BenchSummary};
use recipe_scenario::{run_scenario, Scenario};

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .expect("usage: scenario_runner <scenario.{toml,json}> [summary_json] [telemetry_dir]");
    let summary_path = args.next();
    let telemetry_dir = args.next();

    let scenario = match Scenario::from_path(std::path::Path::new(&path)) {
        Ok(scenario) => scenario,
        Err(err) => {
            eprintln!("scenario rejected: {err}");
            std::process::exit(2);
        }
    };
    println!("scenario `{}`: {}", scenario.name, scenario.description);
    println!(
        "  {} shard(s) x {} replica(s), {} client(s), {} target ops, protocols: {}",
        scenario.deployment.shards(),
        scenario.deployment.replicas_per_shard(),
        scenario.deployment.client_model().clients,
        scenario.deployment.client_model().total_operations,
        scenario
            .protocols
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let outcomes = run_scenario(&scenario);
    let mut metrics = Vec::new();
    let mut failed = false;
    for outcome in &outcomes {
        let total = &outcome.stats.total;
        println!(
            "\n[{}] committed {} ops in {:.2} virtual s ({:.0} ops/s), p99 {:.1} us, \
             migrations {}, txns {}/{} committed/aborted, view changes {}",
            outcome.protocol,
            total.committed,
            total.elapsed_secs,
            total.throughput_ops,
            total.p99_latency_us,
            outcome.stats.migration.migrations_completed,
            outcome.stats.txn.committed,
            outcome.stats.txn.aborted,
            outcome.view_changes,
        );
        for t in &outcome.stats.gateway.tenants {
            println!(
                "  tenant {:<10} admitted {:>6}  throttled {:>6}  rejected {:>4}  committed ops {:>6}",
                t.tenant, t.admitted, t.throttled, t.rejected, t.committed_ops
            );
        }
        let prefix = metric_slug(outcome.protocol);
        metrics.push(BenchMetric {
            name: format!("{prefix}_committed_ops"),
            value: total.committed as f64,
        });
        metrics.push(BenchMetric {
            name: format!("{prefix}_throughput_ops_per_sec"),
            value: total.throughput_ops,
        });
        metrics.push(BenchMetric {
            name: format!("{prefix}_p99_us"),
            value: total.p99_latency_us,
        });
        if let (Some(dir), Some(report)) = (&telemetry_dir, &outcome.telemetry) {
            std::fs::create_dir_all(dir).expect("telemetry dir created");
            let file = format!(
                "{dir}/{}_{}.jsonl",
                metric_slug(&scenario.name),
                outcome.protocol
            );
            std::fs::write(&file, report.to_jsonl()).expect("telemetry written");
            println!("  telemetry exported to {file}");
        }
        if !outcome.passed() {
            failed = true;
            for failure in &outcome.failures {
                eprintln!("  EXPECTATION VIOLATED [{}]: {failure}", outcome.protocol);
            }
        }
    }

    if let Some(path) = summary_path {
        let summary = BenchSummary {
            bench: format!("scenario_{}", metric_slug(&scenario.name)),
            metrics,
        };
        write_summary(&path, &summary).expect("summary written");
        println!("\nsummary written to {path}");
    }

    if failed {
        eprintln!("\nscenario `{}` FAILED", scenario.name);
        std::process::exit(1);
    }
    println!(
        "\nscenario `{}` passed ({} protocol run(s))",
        scenario.name,
        outcomes.len()
    );
}

//! Regenerates Figure 3: throughput for different value sizes (90% reads).
fn main() {
    let rows = recipe_bench::fig3_value_size(1_500);
    recipe_bench::print_rows("Figure 3: throughput vs value size (90% R)", &rows);
    println!("\n{}", serde_json::to_string_pretty(&rows).unwrap());
}

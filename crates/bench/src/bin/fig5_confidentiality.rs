//! Regenerates Figure 5: Recipe with confidentiality vs PBFT.
fn main() {
    let rows = recipe_bench::fig5_confidentiality(1_500);
    recipe_bench::print_rows("Figure 5: Recipe with confidentiality vs PBFT", &rows);
    println!("\n{}", serde_json::to_string_pretty(&rows).unwrap());
}

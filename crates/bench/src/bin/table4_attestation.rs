//! Regenerates Table 4: attestation latency through the Recipe CAS vs IAS.
fn main() {
    println!("=== Table 4: attestation latency ===");
    println!("{:<12} {:>10} {:>10}", "service", "mean (s)", "speedup");
    for (name, mean_s, speedup) in recipe_bench::table4_attestation(100) {
        println!("{name:<12} {mean_s:>10.3} {speedup:>9.1}x");
    }
}

//! Regenerates the shard-scaling experiment (beyond the paper): aggregate
//! throughput of R-Raft and R-ABD across 1/2/4/8 consistent-hash shards under
//! the default YCSB Zipfian workload.
fn main() {
    let rows = recipe_bench::fig_shard_scaling(1_200);
    recipe_bench::print_rows(
        "Shard scaling: R-Raft / R-ABD across 1-8 shards (YCSB Zipfian, 50% R)",
        &rows,
    );
    println!("\n{}", serde_json::to_string_pretty(&rows).unwrap());
}

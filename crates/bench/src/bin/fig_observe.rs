//! Observability experiment: runs the mixed single-key / transaction /
//! migration workload twice with the same seed — telemetry off, then on —
//! and validates the whole telemetry pipeline end to end:
//!
//! 1. the virtual-time results of both runs must be bit-identical (telemetry
//!    only observes);
//! 2. the JSONL export must round-trip through the span/metric/attribution
//!    schema validator, non-empty;
//! 3. every shard's cost attribution must reconcile: busy + idle ns equals
//!    `replicas × elapsed` within 1%;
//! 4. the telemetry-enabled run must not cost more than 10% wall-clock
//!    overhead over the disabled run (the perf gate for the subsystem).
//!
//! Any violation exits non-zero, so CI can run this binary as a smoke test.
//! It also prints the per-shard "where the nanoseconds went" attribution
//! table that decomposes the confidential-shard overhead into its cost
//! categories, and writes the Chrome-trace + JSONL exports.
//!
//! Arguments: `[operations] [output_dir]` — default 2000 operations, exports
//! written under `target/observe/`.

use std::time::Instant;

use recipe_bench::{attribution_reconciliation, fig_observe, ObserveReport};
use recipe_telemetry::{validate_jsonl, CostCategory};

/// Minimum accumulated wall-clock seconds in the telemetry-off mode before
/// the overhead gate is trusted; below this, scheduler noise dominates and
/// the comparison would flake.
const MIN_GATE_SECS: f64 = 0.2;

/// Maximum tolerated wall-clock overhead of telemetry-on over telemetry-off.
const MAX_OVERHEAD: f64 = 0.10;

fn timed(operations: usize, telemetry: bool) -> (ObserveReport, f64) {
    let start = Instant::now();
    let report = fig_observe(operations, telemetry);
    (report, start.elapsed().as_secs_f64())
}

fn main() {
    let operations = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(2_000);
    let out_dir = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "target/observe".into());

    let (off, wall_off) = timed(operations, false);
    let (on, wall_on) = timed(operations, true);

    // 1. Telemetry must be invisible on the virtual clock.
    if on.stats != off.stats {
        eprintln!("FAIL: telemetry changed the run (virtual-time stats differ between modes)");
        std::process::exit(1);
    }
    let stats = &on.stats;
    println!(
        "mixed workload: {} committed ({} txns, {} aborted attempts), {} migrations, \
         {:.0} ops/s virtual",
        stats.total.committed,
        stats.total.committed_txns,
        stats.total.aborted_txns,
        stats.migration.migrations_completed,
        stats.total.throughput_ops,
    );
    let telemetry = on
        .telemetry
        .expect("telemetry-enabled run carries a report");
    println!(
        "trace: {} spans ({} dropped), {} metrics, {} shard attributions",
        telemetry.spans.len(),
        telemetry.spans_dropped,
        telemetry.metrics.len(),
        telemetry.attribution.len(),
    );

    // 2. Schema-validate the JSONL export.
    let jsonl = telemetry.to_jsonl();
    match validate_jsonl(&jsonl) {
        Ok(summary) if summary.spans > 0 && summary.attribution > 0 => {
            println!(
                "jsonl: {} span, {} metric, {} attribution lines — schema ok",
                summary.spans, summary.metrics, summary.attribution
            );
        }
        Ok(summary) => {
            eprintln!(
                "FAIL: degenerate trace (spans={}, attribution={})",
                summary.spans, summary.attribution
            );
            std::process::exit(1);
        }
        Err(err) => {
            eprintln!("FAIL: jsonl schema violation: {err}");
            std::process::exit(1);
        }
    }

    // 3. Per-shard attribution must reconcile with the virtual clock.
    let violations = attribution_reconciliation(&telemetry, 0.01);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("FAIL: {v}");
        }
        std::process::exit(1);
    }
    println!("attribution reconciles: busy + idle = replicas x elapsed on every shard (±1%)");

    // The attribution table: where the nanoseconds went, per shard. Shard 0
    // is confidential, shard 1 plaintext — the per-category deltas decompose
    // the confidential-mode overhead.
    println!("\n=== Cost attribution (virtual ns, share of shard capacity) ===");
    for shard in &telemetry.attribution {
        let capacity = shard.capacity_ns() as f64;
        println!(
            "shard {} ({} replicas, {:.1} ms elapsed):",
            shard.shard,
            shard.replicas,
            shard.elapsed_ns as f64 / 1e6
        );
        for (category, ns) in shard.busy.entries() {
            if ns == 0 {
                continue;
            }
            println!(
                "  {:<14} {:>14} ns  {:>6.2}%",
                category.as_str(),
                ns,
                ns as f64 / capacity * 100.0
            );
        }
    }
    if telemetry.attribution.len() >= 2 {
        println!("\n=== Confidential-shard overhead vs shard 1 (per category, ns) ===");
        let conf = &telemetry.attribution[0];
        let plain = &telemetry.attribution[1];
        for category in CostCategory::ALL {
            if category == CostCategory::Idle {
                continue;
            }
            let delta = conf.busy.get(category) as i64 - plain.busy.get(category) as i64;
            if delta != 0 {
                println!("  {:<14} {:>+14}", category.as_str(), delta);
            }
        }
    }

    // Exports.
    std::fs::create_dir_all(&out_dir).expect("output dir created");
    let trace_path = format!("{out_dir}/observe_trace.json");
    let jsonl_path = format!("{out_dir}/observe.jsonl");
    std::fs::write(&trace_path, telemetry.to_chrome_trace()).expect("trace written");
    std::fs::write(&jsonl_path, &jsonl).expect("jsonl written");
    println!("\nchrome trace written to {trace_path} (load via ui.perfetto.dev)");
    println!("jsonl export written to {jsonl_path}");

    // 4. Wall-clock overhead gate. Each mode is sampled several times
    // (alternating, at least 3 pairs and enough accumulated time to rise
    // above scheduler noise) and the *fastest* sample of each mode is
    // compared — the minimum is the run least disturbed by the host.
    let mut off_samples = vec![wall_off];
    let mut on_samples = vec![wall_on];
    while off_samples.len() < 3 || off_samples.iter().sum::<f64>() < MIN_GATE_SECS {
        off_samples.push(timed(operations, false).1);
        on_samples.push(timed(operations, true).1);
    }
    let best = |samples: &[f64]| samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let (best_off, best_on) = (best(&off_samples), best(&on_samples));
    let committed = stats.total.committed as f64;
    let overhead = best_on / best_off - 1.0;
    println!(
        "\ntelemetry overhead: {:.0} ops/s off vs {:.0} ops/s on (best of {} wall-clock \
         samples each) = {:.1}% overhead (gate {:.0}%)",
        committed / best_off,
        committed / best_on,
        off_samples.len(),
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
    if overhead > MAX_OVERHEAD {
        eprintln!(
            "FAIL: telemetry overhead {:.1}% exceeds the {:.0}% gate",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
    println!("observability checks passed");
}

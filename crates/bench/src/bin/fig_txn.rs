//! Cross-shard transaction experiment: four R-Raft shards (shard 0
//! confidential), sweeping the transaction fraction 0 → 100% (fan-out 2) and
//! the cross-shard fan-out 1 → 4 (fraction 50%) against the single-key
//! baseline.
//!
//! Arguments: `[operations] [summary_json_path]` — the first overrides the
//! committed-operation count per sweep step (default 1200; CI passes a smoke
//! value), the second writes the machine-readable `BENCH_txn.json` summary
//! the perf gate compares against `crates/bench/baselines/`.
fn main() {
    let operations = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(1_200);
    let report = recipe_bench::fig_txn(operations);
    recipe_bench::print_rows(
        "Cross-shard transactions: R-Raft 4 shards (shard 0 confidential), txn fraction 0-100%, fan-out 1-4",
        &report.rows,
    );
    let committed: u64 = report.sweep.iter().map(|s| s.txn.committed).sum();
    let aborted: u64 = report.sweep.iter().map(|s| s.txn.aborted).sum();
    let sealed: u64 = report.sweep.iter().map(|s| s.txn.sealed_frames).sum();
    let frames: u64 = report.sweep.iter().map(|s| s.txn.frames_sent).sum();
    println!(
        "\ntransactions: {committed} committed, {aborted} aborted (lock conflicts, retried); \
         {frames} 2PC frames, {sealed} sealed (confidential participant)"
    );
    let summary = recipe_bench::txn_summary(&report);
    println!("\n{}", serde_json::to_string_pretty(&summary).unwrap());
    if let Some(path) = std::env::args().nth(2) {
        recipe_bench::write_summary(&path, &summary).expect("summary written");
        println!("summary written to {path}");
    }
}

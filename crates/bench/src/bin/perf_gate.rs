//! CI perf-regression gate: compares fresh `BENCH_*.json` smoke summaries
//! against the checked-in baselines and fails (exit 1) when any committed
//! ops/sec metric regressed beyond the tolerance.
//!
//! Usage: `perf_gate <baseline_dir> <current_dir> [tolerance]`
//!
//! Every `BENCH_*.json` in `baseline_dir` must have a matching file in
//! `current_dir`. The default tolerance is 0.15 (15%); the simulator is
//! deterministic, so the slack only absorbs intentional cost-model and
//! scheduling changes — real regressions blow well past it.

use recipe_bench::{perf_gate_compare, BenchSummary};

fn load(path: &std::path::Path) -> BenchSummary {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|err| panic!("cannot read {}: {err}", path.display()));
    serde_json::from_str(&text)
        .unwrap_or_else(|err| panic!("cannot parse {}: {err:?}", path.display()))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let baseline_dir = args
        .next()
        .expect("usage: perf_gate <baseline_dir> <current_dir> [tolerance]");
    let current_dir = args
        .next()
        .expect("usage: perf_gate <baseline_dir> <current_dir> [tolerance]");
    let tolerance: f64 = args.next().and_then(|t| t.parse().ok()).unwrap_or(0.15);

    let mut baselines: Vec<std::path::PathBuf> = std::fs::read_dir(&baseline_dir)
        .unwrap_or_else(|err| panic!("cannot list {baseline_dir}: {err}"))
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        })
        .collect();
    baselines.sort();
    assert!(
        !baselines.is_empty(),
        "no BENCH_*.json baselines in {baseline_dir}"
    );

    let mut violations = Vec::new();
    for baseline_path in &baselines {
        let name = baseline_path.file_name().unwrap().to_str().unwrap();
        let current_path = std::path::Path::new(&current_dir).join(name);
        let baseline = load(baseline_path);
        let current = load(&current_path);
        let before = violations.len();
        violations.extend(perf_gate_compare(&baseline, &current, tolerance));
        println!(
            "{name}: {} gated metrics, {} violation(s)",
            baseline
                .metrics
                .iter()
                .filter(|m| m.name.ends_with("_ops_per_sec"))
                .count(),
            violations.len() - before
        );
    }
    if violations.is_empty() {
        println!(
            "perf gate passed ({} summaries, tolerance {:.0}%)",
            baselines.len(),
            tolerance * 100.0
        );
    } else {
        eprintln!("perf gate FAILED:");
        for violation in &violations {
            eprintln!("  {violation}");
        }
        std::process::exit(1);
    }
}

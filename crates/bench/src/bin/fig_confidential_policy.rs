//! Per-shard confidentiality-policy sweep: four R-Raft shards, 0 → 4 of them
//! confidential via `ShardPolicy::confidential()`. Shows confidential shards
//! paying the AEAD + sealed-store cost while plaintext shards match the
//! all-plaintext baseline within noise.
//!
//! Arguments: `[operations] [summary_json_path]` — the first overrides the
//! committed-operation count per sweep step (default 1500; CI passes a smoke
//! value), the second writes the machine-readable `BENCH_*.json` summary the
//! perf gate compares against `crates/bench/baselines/`.
fn main() {
    let operations = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(1_500);
    let report = recipe_bench::fig_confidential_policy(operations);
    recipe_bench::print_rows(
        "Per-shard confidentiality policies: R-Raft 4 shards, confidential fraction 0 -> 100%",
        &report.rows,
    );
    println!("\nper-shard latency on the 2/4-confidential deployment:");
    let mixed = &report.sweep[2];
    for (shard, stats) in mixed.per_shard.iter().enumerate() {
        println!(
            "  shard {shard} ({}): {:>6} ops, mean {:>7.1} us, p99 {:>7.1} us",
            if shard < 2 {
                "confidential"
            } else {
                "plaintext"
            },
            stats.committed,
            stats.mean_latency_us,
            stats.p99_latency_us,
        );
    }
    println!(
        "plaintext shards vs all-plaintext baseline: {:.3}x mean latency (1.0 = no policy bleed)",
        report.plaintext_latency_ratio
    );
    println!(
        "confidential shards vs plaintext neighbours: {:.3}x mean latency (the policy's cost)",
        report.confidential_latency_overhead
    );
    let summary = recipe_bench::confidential_policy_summary(&report);
    println!("\n{}", serde_json::to_string_pretty(&summary).unwrap());
    if let Some(path) = std::env::args().nth(2) {
        recipe_bench::write_summary(&path, &summary).expect("summary written");
        println!("summary written to {path}");
    }
}

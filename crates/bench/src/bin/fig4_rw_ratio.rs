//! Regenerates Figure 4: throughput and speedup of the four Recipe-transformed
//! protocols vs PBFT across read/write ratios.
fn main() {
    let rows = recipe_bench::fig4_rw_ratio(1_500);
    recipe_bench::print_rows(
        "Figure 4: R-protocols vs PBFT across R/W ratios (256 B values)",
        &rows,
    );
    println!("\n{}", serde_json::to_string_pretty(&rows).unwrap());
}

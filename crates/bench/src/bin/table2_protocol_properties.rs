//! Prints Table 2: resource/fault-model properties of related protocols vs Recipe.
fn main() {
    println!("=== Table 2: protocol properties ===");
    println!(
        "{:<20} {:>8} {:>8} {:>12} {:>20} {:>6} {:>6} {:>12}",
        "protocol",
        "active",
        "total",
        "resilience",
        "msg complexity",
        "TEEs",
        "D-IO",
        "fault model"
    );
    for row in recipe_bft::table2_rows() {
        println!(
            "{:<20} {:>8} {:>8} {:>12} {:>20} {:>6} {:>6} {:>12}",
            row.name,
            row.active_replicas,
            row.total_replicas,
            row.resilience,
            row.message_complexity,
            if row.uses_tees { "yes" } else { "no" },
            if row.uses_direct_io { "yes" } else { "no" },
            row.fault_model
        );
    }
}

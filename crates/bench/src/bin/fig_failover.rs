//! Regenerates the crash-recovery failover experiment: a participant-group
//! leader is killed mid-2PC and (separately) mid-migration; the fault plane
//! elects a new leader, the replicated prepare records resolve every
//! in-flight transaction, and the crashed node restarts rollback-protected —
//! zero lost or duplicated commits, with the throughput dip and recovery
//! visible on the timeline.
//!
//! Arguments: `[operations] [summary_json_path]` — the first overrides the
//! committed-operation count (default 2400; CI passes a smoke value), the
//! second writes the machine-readable `BENCH_*.json` summary the perf gate
//! compares against `crates/bench/baselines/`.
fn main() {
    let operations = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(2_400);
    let report = recipe_bench::fig_failover(operations);
    recipe_bench::print_rows(
        "Crash-recovery failover: participant leader killed mid-2PC and mid-migration",
        &report.rows,
    );
    println!(
        "\ncrash at {:.2} ms, restart at {:.2} ms, throughput back to 80% of steady \
         ({:.0} ops/s) after {:.2} ms; dip floor {:.0} ops/s",
        report.crash_at_ns as f64 / 1e6,
        report.recover_at_ns as f64 / 1e6,
        report.steady_ops,
        report.time_to_recover_ns as f64 / 1e6,
        report.dip_floor_ops,
    );
    println!(
        "2PC run: {} committed = {} txn ops (zero lost, zero duplicated), {} aborts retried",
        report.crash_2pc.total.committed,
        report.crash_2pc.txn.committed_ops,
        report.crash_2pc.txn.aborted,
    );
    println!(
        "migration run: {} committed, {} migration(s) completed despite the donor crash",
        report.crash_migration.total.committed,
        report.crash_migration.migration.migrations_completed,
    );
    println!("crashed-run throughput timeline (commits per bucket):");
    for bucket in &report.crash_2pc.timeline {
        let marker = if bucket.end_ns > report.crash_at_ns
            && bucket.end_ns.saturating_sub(report.crash_at_ns) <= report.time_to_recover_ns
        {
            "  <- outage"
        } else {
            ""
        };
        println!(
            "  {:>7.2} ms  {:>5}  {}{}",
            bucket.end_ns as f64 / 1e6,
            bucket.committed,
            "#".repeat((bucket.committed / 8) as usize),
            marker
        );
    }
    let summary = recipe_bench::failover_summary(&report);
    println!("\n{}", serde_json::to_string_pretty(&summary).unwrap());
    if let Some(path) = std::env::args().nth(2) {
        recipe_bench::write_summary(&path, &summary).expect("summary written");
        println!("summary written to {path}");
    }
}

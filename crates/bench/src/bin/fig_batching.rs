//! Regenerates the leader-batching experiment: per-leader committed-ops/sec of
//! native Raft and confidential R-Raft across batch sizes 1/4/16/64.
//!
//! An optional first argument overrides the committed-operation count per run
//! (default 1200; CI passes a small value as a smoke test).
fn main() {
    let operations = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(1_200);
    let rows = recipe_bench::fig_batching(operations);
    recipe_bench::print_rows(
        "Leader batching: Raft (native) / R-Raft (confidential), batch sizes 1-64 (write-only, 64 B)",
        &rows,
    );
    println!("\n{}", serde_json::to_string_pretty(&rows).unwrap());
}

//! Regenerates the leader-batching experiment: per-leader committed-ops/sec of
//! native Raft and confidential R-Raft across batch sizes 1/4/16/64.
//!
//! Arguments: `[operations] [summary_json_path]` — the first overrides the
//! committed-operation count per run (default 1200; CI passes a small value
//! as a smoke test), the second writes the machine-readable `BENCH_*.json`
//! summary the perf gate compares against `crates/bench/baselines/`.
fn main() {
    let operations = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(1_200);
    let report = recipe_bench::fig_batching_report(operations);
    recipe_bench::print_rows(
        "Leader batching: Raft (native) / R-Raft (confidential), batch sizes 1-64 (write-only, 64 B)",
        &report.rows,
    );
    println!("\n{}", serde_json::to_string_pretty(&report.rows).unwrap());
    if let Some(path) = std::env::args().nth(2) {
        let summary = recipe_bench::batching_summary(&report);
        recipe_bench::write_summary(&path, &summary).expect("summary written");
        println!("summary written to {path}");
    }
}

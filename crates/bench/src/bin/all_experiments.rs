//! Runs every experiment in sequence (the full evaluation, smaller op counts).
fn main() {
    let ops = 1_000;
    recipe_bench::print_rows("Figure 4", &recipe_bench::fig4_rw_ratio(ops));
    recipe_bench::print_rows("Figure 3", &recipe_bench::fig3_value_size(ops));
    recipe_bench::print_rows("Figure 5", &recipe_bench::fig5_confidentiality(ops));
    recipe_bench::print_rows("Figure 6a", &recipe_bench::fig6a_tee_overheads(ops));
    println!("\n=== Figure 6b ===");
    for (stack, size, gbps) in recipe_bench::fig6b_network() {
        println!("{stack:<20} {size:>6} B {gbps:>10.2} Gb/s");
    }
    recipe_bench::print_rows("Damysus comparison", &recipe_bench::damysus_compare(ops));
    recipe_bench::print_rows("Shard scaling", &recipe_bench::fig_shard_scaling(ops));
    println!("\n=== Table 4 ===");
    for (name, mean_s, speedup) in recipe_bench::table4_attestation(50) {
        println!("{name:<12} mean {mean_s:.3} s  ({speedup:.1}x)");
    }
}

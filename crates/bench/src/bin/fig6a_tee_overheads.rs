//! Regenerates Figure 6a: overhead of the transformation + TEEs vs native CFT.
fn main() {
    let rows = recipe_bench::fig6a_tee_overheads(1_500);
    recipe_bench::print_rows(
        "Figure 6a: transformation + TEE overhead (speedup column = native/R- factor)",
        &rows,
    );
    println!("\n{}", serde_json::to_string_pretty(&rows).unwrap());
}

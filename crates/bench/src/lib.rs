//! Benchmark harness reproducing every table and figure of the Recipe evaluation.
//!
//! Each `figN_*` / `tableN_*` function runs the corresponding experiment on the
//! deterministic simulator and returns structured rows; the binaries under
//! `src/bin/` print them, the Criterion benches under `benches/` measure
//! representative configurations, and EXPERIMENTS.md records paper-vs-measured
//! values. See DESIGN.md for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;

use recipe_attest::{ConfigAndAttestService, IntelAttestationService, QuoteVerifier, SecretBundle};
use recipe_bft::{DamysusReplica, PbftReplica};
use recipe_core::{Membership, Operation, Request};
use recipe_gateway::{GatewayConfig, TenantSpec};
use recipe_net::{CrashPlan, ExecMode, NetCostModel, NodeId, Transport};
use recipe_protocols::{AbdReplica, AllConcurReplica, BatchConfig, ChainReplica, RaftReplica};
use recipe_shard::{
    DeploymentSpec, PolicyReplica, RebalanceConfig, ShardPolicy, ShardedCluster, ShardedRunStats,
};
use recipe_sim::{ClientModel, CostProfile, Replica, RunStats, SimCluster, SimConfig};
use recipe_telemetry::{TelemetryConfig, TelemetryReport};
use recipe_workload::{
    stable_key_hash, TenantMixSpec, TxnWorkloadSpec, WorkloadRequest, WorkloadSpec,
};
use serde::{Deserialize, Serialize};

/// Which system a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Recipe-transformed Raft.
    RRaft,
    /// Recipe-transformed Chain Replication.
    RChain,
    /// Recipe-transformed ABD.
    RAbd,
    /// Recipe-transformed AllConcur.
    RAllConcur,
    /// Native (untransformed) Raft — Figure 6a baseline.
    NativeRaft,
    /// Native Chain Replication.
    NativeChain,
    /// Native ABD.
    NativeAbd,
    /// Native AllConcur.
    NativeAllConcur,
    /// PBFT (BFT-Smart) baseline.
    Pbft,
    /// Damysus baseline.
    Damysus,
}

impl ProtocolKind {
    /// Display name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::RRaft => "R-Raft",
            ProtocolKind::RChain => "R-CR",
            ProtocolKind::RAbd => "R-ABD",
            ProtocolKind::RAllConcur => "R-AllConcur",
            ProtocolKind::NativeRaft => "Raft (native)",
            ProtocolKind::NativeChain => "CR (native)",
            ProtocolKind::NativeAbd => "ABD (native)",
            ProtocolKind::NativeAllConcur => "AllConcur (native)",
            ProtocolKind::Pbft => "PBFT",
            ProtocolKind::Damysus => "Damysus",
        }
    }

    /// The four Recipe-transformed protocols.
    pub fn recipe_protocols() -> [ProtocolKind; 4] {
        [
            ProtocolKind::RRaft,
            ProtocolKind::RChain,
            ProtocolKind::RAllConcur,
            ProtocolKind::RAbd,
        ]
    }

    /// Matching native variant for a Recipe protocol (panics for baselines).
    pub fn native_counterpart(&self) -> ProtocolKind {
        match self {
            ProtocolKind::RRaft => ProtocolKind::NativeRaft,
            ProtocolKind::RChain => ProtocolKind::NativeChain,
            ProtocolKind::RAbd => ProtocolKind::NativeAbd,
            ProtocolKind::RAllConcur => ProtocolKind::NativeAllConcur,
            other => panic!("{other:?} has no native counterpart"),
        }
    }
}

/// One experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Read fraction of the workload.
    pub read_ratio: f64,
    /// Value size in bytes.
    pub value_size: usize,
    /// Whether Recipe runs in confidential mode.
    pub confidential: bool,
    /// Total committed operations per run.
    pub operations: usize,
    /// Closed-loop client count.
    pub clients: usize,
    /// Seed for workload and simulator.
    pub seed: u64,
    /// Leader-side batching factor (ops per wire frame; 1 = unbatched). Wired
    /// through for R-Raft, R-CR, their native counterparts and PBFT — the
    /// protocols with a batching pipeline.
    pub batch_ops: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            protocol: ProtocolKind::RRaft,
            read_ratio: 0.5,
            value_size: 256,
            confidential: false,
            operations: 1_500,
            clients: 24,
            seed: 7,
            batch_ops: 1,
        }
    }
}

/// One output row (one bar / one point of a figure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRow {
    /// Protocol name.
    pub protocol: String,
    /// Free-form configuration label (e.g. "90% R", "1024 B").
    pub config: String,
    /// Measured throughput (simulated ops/s).
    pub throughput_ops: f64,
    /// Mean latency in microseconds.
    pub mean_latency_us: f64,
    /// Speedup relative to the row's baseline (1.0 when this row *is* the baseline).
    pub speedup_vs_baseline: f64,
}

/// Runs one experiment configuration and returns the raw simulator statistics.
pub fn run_protocol(config: &ExperimentConfig) -> RunStats {
    let operations = config.operations;
    let clients = config.clients;
    let workload = WorkloadSpec {
        read_ratio: config.read_ratio,
        value_size: config.value_size,
        seed: config.seed,
        ..WorkloadSpec::default()
    };

    // The cost profile is the source of truth for the batching factor: the
    // replicas' flush triggers are derived from `profile.batch_ops`, so the
    // Batcher and the cost-model bookkeeping can never disagree.
    let recipe = recipe_profile(config);
    let native = CostProfile::native_cft().with_batch_ops(config.batch_ops);
    let pbft = CostProfile::pbft_baseline().with_batch_ops(config.batch_ops);
    let batch = BatchConfig::of_ops(recipe.batch_ops);
    match config.protocol {
        ProtocolKind::RRaft => run_cluster(
            build(3, |id, m| {
                RaftReplica::recipe(id, m, config.confidential).with_batching(batch)
            }),
            recipe,
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::NativeRaft => run_cluster(
            build(3, |id, m| RaftReplica::native(id, m).with_batching(batch)),
            native,
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::RChain => run_cluster(
            build(3, |id, m| {
                ChainReplica::recipe(id, m, config.confidential).with_batching(batch)
            }),
            recipe,
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::NativeChain => run_cluster(
            build(3, |id, m| ChainReplica::native(id, m).with_batching(batch)),
            native,
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::RAbd => run_cluster(
            build(3, |id, m| AbdReplica::recipe(id, m, config.confidential)),
            recipe_profile(config),
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::NativeAbd => run_cluster(
            build(3, AbdReplica::native),
            CostProfile::native_cft(),
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::RAllConcur => run_cluster(
            build(3, |id, m| {
                AllConcurReplica::recipe(id, m, config.confidential)
            }),
            recipe_profile(config),
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::NativeAllConcur => run_cluster(
            build(3, AllConcurReplica::native),
            CostProfile::native_cft(),
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::Pbft => run_cluster(
            {
                // PBFT needs 3f + 1 replicas for the same f = 1.
                let membership = Membership::of_size(4, 1);
                (0..4)
                    .map(|id| PbftReplica::new(id, membership.clone()).with_batching(batch))
                    .collect()
            },
            pbft,
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::Damysus => run_cluster(
            {
                let membership = Membership::of_size(3, 1);
                (0..3)
                    .map(|id| DamysusReplica::new(id, membership.clone()))
                    .collect()
            },
            CostProfile::damysus_baseline(),
            workload,
            operations,
            clients,
            config.seed,
        ),
    }
}

fn recipe_profile(config: &ExperimentConfig) -> CostProfile {
    let profile = CostProfile::recipe().with_batch_ops(config.batch_ops);
    if config.confidential {
        profile.confidential()
    } else {
        profile
    }
}

fn build<R>(n: usize, make: impl Fn(u64, Membership) -> R) -> Vec<R> {
    recipe_protocols::build_cluster(n, (n - 1) / 2, make)
}

fn run_cluster<R: Replica>(
    replicas: Vec<R>,
    profile: CostProfile,
    workload: WorkloadSpec,
    operations: usize,
    clients: usize,
    seed: u64,
) -> RunStats {
    let n = replicas.len();
    let mut sim_config = SimConfig::uniform(n, profile);
    sim_config.seed = seed;
    sim_config.clients = ClientModel {
        clients,
        total_operations: operations,
    };
    let mut cluster = SimCluster::new(replicas, sim_config);
    let generator = RefCell::new(workload.generator());
    cluster
        .run(move |_client, _seq| recipe_shard::op_from_workload(generator.borrow_mut().next_op()))
}

// ---------------------------------------------------------------------------
// Figures and tables
// ---------------------------------------------------------------------------

/// Figure 4: throughput and speedup of the four R-protocols vs PBFT across
/// read/write ratios (256 B values).
pub fn fig4_rw_ratio(operations: usize) -> Vec<ExperimentRow> {
    let ratios = [0.5, 0.75, 0.9, 0.95, 0.99];
    let mut rows = Vec::new();
    for &ratio in &ratios {
        let label = format!("{:.0}% R", ratio * 100.0);
        let pbft = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::Pbft,
            read_ratio: ratio,
            operations,
            ..ExperimentConfig::default()
        });
        rows.push(ExperimentRow {
            protocol: "PBFT".into(),
            config: label.clone(),
            throughput_ops: pbft.throughput_ops,
            mean_latency_us: pbft.mean_latency_us,
            speedup_vs_baseline: 1.0,
        });
        for kind in ProtocolKind::recipe_protocols() {
            let stats = run_protocol(&ExperimentConfig {
                protocol: kind,
                read_ratio: ratio,
                operations,
                ..ExperimentConfig::default()
            });
            rows.push(ExperimentRow {
                protocol: kind.name().into(),
                config: label.clone(),
                throughput_ops: stats.throughput_ops,
                mean_latency_us: stats.mean_latency_us,
                speedup_vs_baseline: stats.throughput_ops / pbft.throughput_ops,
            });
        }
    }
    rows
}

/// Figure 3: throughput for different value sizes (256 B / 1024 B / 4096 B) under a
/// 90 % read workload.
pub fn fig3_value_size(operations: usize) -> Vec<ExperimentRow> {
    let sizes = [256usize, 1024, 4096];
    let mut rows = Vec::new();
    for &size in &sizes {
        let label = format!("{size} B");
        let pbft = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::Pbft,
            read_ratio: 0.9,
            value_size: size,
            operations,
            ..ExperimentConfig::default()
        });
        rows.push(ExperimentRow {
            protocol: "PBFT".into(),
            config: label.clone(),
            throughput_ops: pbft.throughput_ops,
            mean_latency_us: pbft.mean_latency_us,
            speedup_vs_baseline: 1.0,
        });
        for kind in ProtocolKind::recipe_protocols() {
            let stats = run_protocol(&ExperimentConfig {
                protocol: kind,
                read_ratio: 0.9,
                value_size: size,
                operations,
                ..ExperimentConfig::default()
            });
            rows.push(ExperimentRow {
                protocol: kind.name().into(),
                config: label.clone(),
                throughput_ops: stats.throughput_ops,
                mean_latency_us: stats.mean_latency_us,
                speedup_vs_baseline: stats.throughput_ops / pbft.throughput_ops,
            });
        }
    }
    rows
}

/// Figure 5: throughput with confidentiality (encrypted values and payloads) vs
/// PBFT, for 50 % and 95 % read workloads.
pub fn fig5_confidentiality(operations: usize) -> Vec<ExperimentRow> {
    let ratios = [0.5, 0.95];
    let mut rows = Vec::new();
    for &ratio in &ratios {
        let label = format!("{:.0}% R (conf.)", ratio * 100.0);
        let pbft = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::Pbft,
            read_ratio: ratio,
            operations,
            ..ExperimentConfig::default()
        });
        rows.push(ExperimentRow {
            protocol: "PBFT".into(),
            config: label.clone(),
            throughput_ops: pbft.throughput_ops,
            mean_latency_us: pbft.mean_latency_us,
            speedup_vs_baseline: 1.0,
        });
        for kind in ProtocolKind::recipe_protocols() {
            let stats = run_protocol(&ExperimentConfig {
                protocol: kind,
                read_ratio: ratio,
                confidential: true,
                operations,
                ..ExperimentConfig::default()
            });
            rows.push(ExperimentRow {
                protocol: format!("{} (conf.)", kind.name()),
                config: label.clone(),
                throughput_ops: stats.throughput_ops,
                mean_latency_us: stats.mean_latency_us,
                speedup_vs_baseline: stats.throughput_ops / pbft.throughput_ops,
            });
        }
    }
    rows
}

/// Figure 6a: overhead of the transformation + TEEs — native protocol throughput
/// divided by the R-protocol throughput, across read/write ratios.
pub fn fig6a_tee_overheads(operations: usize) -> Vec<ExperimentRow> {
    let ratios = [0.5, 0.75, 0.9, 0.95, 0.99];
    let mut rows = Vec::new();
    for &ratio in &ratios {
        let label = format!("{:.0}% R", ratio * 100.0);
        for kind in ProtocolKind::recipe_protocols() {
            let recipe = run_protocol(&ExperimentConfig {
                protocol: kind,
                read_ratio: ratio,
                operations,
                ..ExperimentConfig::default()
            });
            let native = run_protocol(&ExperimentConfig {
                protocol: kind.native_counterpart(),
                read_ratio: ratio,
                operations,
                ..ExperimentConfig::default()
            });
            rows.push(ExperimentRow {
                protocol: kind.name().into(),
                config: label.clone(),
                throughput_ops: recipe.throughput_ops,
                mean_latency_us: recipe.mean_latency_us,
                // For this figure "speedup" is the overhead factor (native / recipe).
                speedup_vs_baseline: native.throughput_ops / recipe.throughput_ops,
            });
        }
    }
    rows
}

/// Figure 6b: network-stack goodput (Gb/s) vs payload size for the five stacks.
pub fn fig6b_network() -> Vec<(String, usize, f64)> {
    let model = NetCostModel::default();
    let sizes = [64usize, 256, 1024, 1460, 2048, 4096];
    let mut rows = Vec::new();
    for &size in &sizes {
        rows.push((
            "kernel-net".to_string(),
            size,
            model.throughput_gbps(Transport::KernelSockets, ExecMode::Native, size),
        ));
        rows.push((
            "direct I/O".to_string(),
            size,
            model.throughput_gbps(Transport::DirectIo, ExecMode::Native, size),
        ));
        rows.push((
            "kernel-net (TEEs)".to_string(),
            size,
            model.throughput_gbps(Transport::KernelSockets, ExecMode::Tee, size),
        ));
        rows.push((
            "direct I/O (TEEs)".to_string(),
            size,
            model.throughput_gbps(Transport::DirectIo, ExecMode::Tee, size),
        ));
        rows.push((
            "Recipe-lib (net)".to_string(),
            size,
            model.recipe_lib_throughput_gbps(size),
        ));
    }
    rows
}

/// The Damysus comparison of §B.3: Recipe protocols (256 B payload) vs Damysus at
/// 0 B / 64 B / 256 B payloads.
pub fn damysus_compare(operations: usize) -> Vec<ExperimentRow> {
    let mut rows = Vec::new();
    for &size in &[1usize, 64, 256] {
        let damysus = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::Damysus,
            read_ratio: 0.5,
            value_size: size,
            operations,
            ..ExperimentConfig::default()
        });
        rows.push(ExperimentRow {
            protocol: "Damysus".into(),
            config: format!("{size} B"),
            throughput_ops: damysus.throughput_ops,
            mean_latency_us: damysus.mean_latency_us,
            speedup_vs_baseline: 1.0,
        });
    }
    // Recipe protocols with their standard 256 B payload.
    let damysus_256 = run_protocol(&ExperimentConfig {
        protocol: ProtocolKind::Damysus,
        read_ratio: 0.5,
        value_size: 256,
        operations,
        ..ExperimentConfig::default()
    });
    for kind in ProtocolKind::recipe_protocols() {
        let stats = run_protocol(&ExperimentConfig {
            protocol: kind,
            read_ratio: 0.5,
            value_size: 256,
            operations,
            ..ExperimentConfig::default()
        });
        rows.push(ExperimentRow {
            protocol: kind.name().into(),
            config: "256 B".into(),
            throughput_ops: stats.throughput_ops,
            mean_latency_us: stats.mean_latency_us,
            speedup_vs_baseline: stats.throughput_ops / damysus_256.throughput_ops,
        });
    }
    rows
}

/// Batching experiment (beyond the paper): per-leader committed-ops/sec of a
/// single 3-replica group under a write-only workload, sweeping the batch size
/// {1, 4, 16, 64} for the native Raft baseline and confidential R-Raft.
///
/// Every commit flows through the one leader, so throughput *is* per-leader
/// throughput. The `batch=1` row of each protocol is the baseline its speedups
/// are measured against; the confidential rows demonstrate how amortizing the
/// `shield_msg`/`verify_msg` fixed costs (counter, MAC/AEAD setup, framing —
/// the fig6a overhead factors) over a frame recovers most of the
/// confidential-mode tax.
pub fn fig_batching(operations: usize) -> Vec<ExperimentRow> {
    fig_batching_report(operations).rows
}

/// Results of the batching experiment: the display rows plus the raw
/// simulator statistics behind each row (same order), so summaries can report
/// the latency percentiles the rows do not carry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchingReport {
    /// One row per (protocol, batch-size) configuration.
    pub rows: Vec<ExperimentRow>,
    /// The raw statistics behind each row, in row order.
    pub stats: Vec<RunStats>,
}

/// [`fig_batching`] with the raw per-row [`RunStats`] kept alongside the rows.
pub fn fig_batching_report(operations: usize) -> BatchingReport {
    let batch_sizes = [1usize, 4, 16, 64];
    let mut rows = Vec::new();
    let mut raw = Vec::new();
    for (protocol, confidential, label) in [
        (ProtocolKind::NativeRaft, false, "Raft (native)"),
        (ProtocolKind::RRaft, true, "R-Raft (conf.)"),
    ] {
        let mut baseline = None;
        for &batch in &batch_sizes {
            let stats = run_protocol(&ExperimentConfig {
                protocol,
                confidential,
                read_ratio: 0.0,
                value_size: 64,
                clients: 96,
                operations,
                batch_ops: batch,
                ..ExperimentConfig::default()
            });
            let base = *baseline.get_or_insert(stats.throughput_ops);
            rows.push(ExperimentRow {
                protocol: label.into(),
                config: format!("batch={batch}"),
                throughput_ops: stats.throughput_ops,
                mean_latency_us: stats.mean_latency_us,
                speedup_vs_baseline: stats.throughput_ops / base,
            });
            raw.push(stats);
        }
    }
    BatchingReport { rows, stats: raw }
}

/// Shard-scaling experiment (beyond the paper): aggregate throughput of
/// R-Raft and R-ABD across 1/2/4/8 consistent-hash shards under the default
/// YCSB Zipfian workload. Each shard is an independent 3-replica group; the
/// single-shard rows are the baselines their speedups are measured against.
pub fn fig_shard_scaling(operations: usize) -> Vec<ExperimentRow> {
    let shard_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    for kind in [ProtocolKind::RRaft, ProtocolKind::RAbd] {
        let mut baseline = None;
        for &shards in &shard_counts {
            let stats = run_sharded(kind, shards, operations);
            let base = *baseline.get_or_insert(stats.total.throughput_ops);
            rows.push(ExperimentRow {
                protocol: kind.name().into(),
                config: format!("{shards} shard{}", if shards == 1 { "" } else { "s" }),
                throughput_ops: stats.total.throughput_ops,
                mean_latency_us: stats.total.mean_latency_us,
                speedup_vs_baseline: stats.total.throughput_ops / base,
            });
        }
    }
    rows
}

/// Keys of the YCSB universe owned by `shard`, at most `per_arc` keys from
/// each of up to `max_arcs` distinct ring arcs — a hot range spread over
/// enough arcs that the migration controller can split its load. Shared by
/// the `fig_rebalance` experiment and the rebalancing integration tests so
/// the scenario the tests validate is the scenario the figure measures.
pub fn hot_range_on_shard(
    router: &recipe_shard::ShardRouter,
    shard: usize,
    max_arcs: usize,
    per_arc: usize,
) -> Vec<Vec<u8>> {
    let mut by_arc: std::collections::BTreeMap<usize, Vec<Vec<u8>>> = Default::default();
    for i in 0..10_000 {
        let key = format!("user{i:08}").into_bytes();
        if router.shard_for_key(&key) == shard {
            by_arc
                .entry(router.arc_of_point(stable_key_hash(&key)))
                .or_default()
                .push(key);
        }
    }
    by_arc
        .into_values()
        .take(max_arcs)
        .flat_map(|keys| keys.into_iter().take(per_arc))
        .collect()
}

/// Results of the online-rebalancing experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RebalanceReport {
    /// Phase rows (pre-skew / during-skew / post-cutover aggregate
    /// throughput; "speedup" is relative to the pre-skew level).
    pub rows: Vec<ExperimentRow>,
    /// The full driver statistics, including migration counters and the
    /// throughput timeline.
    pub stats: ShardedRunStats,
    /// Mean aggregate throughput before the skew sets in, ops/s.
    pub pre_skew_ops: f64,
    /// Mean aggregate throughput while the skewed range saturates the donor
    /// leader, ops/s.
    pub during_skew_ops: f64,
    /// Mean aggregate throughput after the migration cutover, ops/s.
    pub post_cutover_ops: f64,
}

/// Online-rebalancing experiment (beyond the paper): two R-Raft shards under
/// a write-only workload that starts balanced and then funnels everything
/// into a hot key range owned entirely by shard 0. The migration controller
/// snapshots the hot arcs, catches up, and cuts them over to shard 1; the
/// throughput timeline shows the sag under skew and the recovery after the
/// epoch bump — with zero lost or duplicated commits (the commit count checks
/// are in this crate's tests and `tests/rebalancing.rs`).
/// Runs `operations` committed operations exactly as asked — but phase means
/// need enough timeline to average over, so runs much below the default 3200
/// produce degenerate (possibly zero) phase figures rather than being
/// silently resized.
pub fn fig_rebalance(operations: usize) -> RebalanceReport {
    // The balanced warm-up is the throughput yardstick the recovery is
    // measured against.
    let balanced_ops = (operations * 7) / 32;

    let bucket_ns = 5_000_000u64;
    let spec = DeploymentSpec::new(2, 3)
        .with_seed(9)
        .with_clients(64, operations)
        .with_rebalance(RebalanceConfig {
            check_interval_ns: 10_000_000,
            min_window_commits: 120,
            imbalance_threshold: 1.4,
            timeline_bucket_ns: bucket_ns,
            ..RebalanceConfig::enabled()
        });
    let mut cluster = ShardedCluster::<RaftReplica>::build(spec);
    let hot = hot_range_on_shard(cluster.router(), 0, 48, 2);

    let issued = std::cell::Cell::new(0usize);
    let stats = cluster.run_rebalancing(|client, seq| {
        let n = issued.get();
        issued.set(n + 1);
        let key = if n < balanced_ops {
            format!("user{:08}", (client * 131 + seq * 17) % 10_000).into_bytes()
        } else {
            hot[n % hot.len()].clone()
        };
        Some(Operation::Put {
            key,
            value: vec![0xAB; 64],
        })
    });

    // Phase means off the timeline: pre-skew up to the bucket where the
    // balanced commits ran out, during-skew until the cutover, post-cutover
    // after it (excluding the cutover bucket and the trailing partial one).
    let timeline = &stats.timeline;
    let mut cumulative = 0u64;
    let mut skew_bucket = timeline.len().saturating_sub(1);
    for (i, bucket) in timeline.iter().enumerate() {
        cumulative += bucket.committed;
        if cumulative >= balanced_ops as u64 {
            skew_bucket = i;
            break;
        }
    }
    let cutover_bucket = ((stats.migration.last_cutover_ns / bucket_ns) as usize)
        .min(timeline.len().saturating_sub(1));
    let mean_ops_per_sec = |from: usize, to: usize| -> f64 {
        if timeline.is_empty() {
            return 0.0;
        }
        let to = to.max(from + 1).min(timeline.len());
        let from = from.min(to - 1);
        let buckets = &timeline[from..to];
        let total: u64 = buckets.iter().map(|b| b.committed).sum();
        total as f64 / buckets.len() as f64 / (bucket_ns as f64 / 1e9)
    };
    let pre_skew_ops = mean_ops_per_sec(0, skew_bucket.max(1));
    let during_skew_ops = mean_ops_per_sec(skew_bucket + 1, cutover_bucket);
    let post_cutover_ops = mean_ops_per_sec(cutover_bucket + 1, timeline.len().saturating_sub(1));

    let rows = vec![
        ExperimentRow {
            protocol: "R-Raft 2 shards".into(),
            config: "pre-skew".into(),
            throughput_ops: pre_skew_ops,
            mean_latency_us: stats.total.mean_latency_us,
            speedup_vs_baseline: 1.0,
        },
        ExperimentRow {
            protocol: "R-Raft 2 shards".into(),
            config: "during skew".into(),
            throughput_ops: during_skew_ops,
            mean_latency_us: stats.total.mean_latency_us,
            speedup_vs_baseline: during_skew_ops / pre_skew_ops,
        },
        ExperimentRow {
            protocol: "R-Raft 2 shards".into(),
            config: "post-cutover".into(),
            throughput_ops: post_cutover_ops,
            mean_latency_us: stats.total.mean_latency_us,
            speedup_vs_baseline: post_cutover_ops / pre_skew_ops,
        },
    ];
    RebalanceReport {
        rows,
        stats,
        pre_skew_ops,
        during_skew_ops,
        post_cutover_ops,
    }
}

/// Results of the per-shard confidentiality-policy experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfidentialPolicyReport {
    /// One row per sweep step (0..=shards confidential); "speedup" is the
    /// step's aggregate throughput relative to the all-plaintext step.
    pub rows: Vec<ExperimentRow>,
    /// The full driver statistics of every sweep step, in step order.
    pub sweep: Vec<ShardedRunStats>,
    /// Mean service latency of the *plaintext* shards in the mixed
    /// (half-confidential) deployment divided by the same shards' latency in
    /// the all-plaintext baseline. ~1.0 means plaintext shards do not pay for
    /// their confidential neighbours.
    pub plaintext_latency_ratio: f64,
    /// Mean service latency of the *confidential* shards divided by the
    /// plaintext shards' latency within the same mixed deployment. > 1.0: the
    /// encryption cost is paid exactly where the policy asks for it.
    pub confidential_latency_overhead: f64,
}

/// Per-shard confidentiality-policy sweep (beyond the paper): four 3-replica
/// R-Raft shards under the default YCSB Zipfian workload, sweeping the number
/// of confidential shards 0 → 4 (shards `0..n` get
/// [`ShardPolicy::confidential`]). Aggregate throughput decays as more of the
/// keyspace pays the AEAD + sealed-store cost; the per-shard latency figures
/// show the cost is *per policy*: confidential shards serve slower, plaintext
/// shards match the all-plaintext baseline within noise.
///
/// The throughput sweep runs saturated (64 closed-loop clients); the latency
/// split is measured on separate low-concurrency probe runs where mean
/// latency ≈ service latency — at saturation, queueing dominates and the
/// closed loop redistributes clients towards the slow shards, which would
/// make plaintext shards look *faster* in a mixed deployment, not unchanged.
pub fn fig_confidential_policy(operations: usize) -> ConfidentialPolicyReport {
    const SHARDS: usize = 4;
    let run_step = |confidential_shards: usize, clients: usize, ops: usize| -> ShardedRunStats {
        let mut spec = DeploymentSpec::new(SHARDS, 3)
            .with_seed(7)
            .with_clients(clients, ops);
        for shard in 0..confidential_shards {
            spec = spec.with_shard_policy(shard, ShardPolicy::confidential());
        }
        let mut cluster = ShardedCluster::<RaftReplica>::build(spec);
        let workload = WorkloadSpec {
            seed: 7,
            ..WorkloadSpec::default()
        };
        let generator = RefCell::new(workload.generator());
        cluster.run(move |_client, _seq| {
            recipe_shard::op_from_workload(generator.borrow_mut().next_op())
        })
    };

    let sweep: Vec<ShardedRunStats> = (0..=SHARDS).map(|n| run_step(n, 64, operations)).collect();
    let baseline_ops = sweep[0].total.throughput_ops;
    let rows = sweep
        .iter()
        .enumerate()
        .map(|(n, stats)| ExperimentRow {
            protocol: "R-Raft 4 shards".into(),
            config: format!("{n}/{SHARDS} confidential"),
            throughput_ops: stats.total.throughput_ops,
            mean_latency_us: stats.total.mean_latency_us,
            speedup_vs_baseline: stats.total.throughput_ops / baseline_ops,
        })
        .collect();

    // Latency split at low concurrency: shards 0..2 confidential, 2..4
    // plaintext on the mixed probe.
    let probe_ops = operations.min(600);
    let probe_baseline = run_step(0, 4, probe_ops);
    let probe_mixed = run_step(SHARDS / 2, 4, probe_ops);
    let mean_latency = |stats: &ShardedRunStats, shards: std::ops::Range<usize>| -> f64 {
        let latencies: Vec<f64> = shards
            .map(|shard| stats.per_shard[shard].mean_latency_us)
            .collect();
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let mixed_plain = mean_latency(&probe_mixed, SHARDS / 2..SHARDS);
    let mixed_conf = mean_latency(&probe_mixed, 0..SHARDS / 2);
    let baseline_plain = mean_latency(&probe_baseline, SHARDS / 2..SHARDS);
    ConfidentialPolicyReport {
        rows,
        sweep,
        plaintext_latency_ratio: mixed_plain / baseline_plain,
        confidential_latency_overhead: mixed_conf / mixed_plain,
    }
}

/// Results of the cross-shard transaction experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TxnReport {
    /// One row per sweep step; "speedup" is the step's aggregate throughput
    /// relative to the single-key (txn fraction 0) baseline.
    pub rows: Vec<ExperimentRow>,
    /// The full driver statistics of every sweep step, in row order.
    pub sweep: Vec<ShardedRunStats>,
    /// Aggregate ops/s of the single-key baseline (txn fraction 0).
    pub single_key_ops: f64,
}

/// Cross-shard transaction sweep (beyond the paper): four 3-replica R-Raft
/// shards — shard 0 confidential, so transactions touching it seal every 2PC
/// frame — under the deterministic multi-key workload generator
/// ([`recipe_workload::TxnWorkloadSpec`]).
///
/// Two sweeps share one deployment shape:
///
/// * **transaction fraction** 0 → 100% at fan-out 2 (3 ops per
///   transaction). The 0% step *is* the single-key baseline every other row
///   is measured against — by construction it takes exactly the
///   pre-transaction batched path.
/// * **cross-shard fan-out** 1 → 4 at a fixed 50% transaction fraction and
///   4 ops per transaction (a transaction needs at least as many ops as
///   participants, so the fan-out sweep carries one op more than the
///   fraction sweep): more participants per transaction mean more 2PC round
///   trips and more staged state before commit.
pub fn fig_txn(operations: usize) -> TxnReport {
    const SHARDS: usize = 4;
    let run_step = |txn_fraction: f64, fan_out: usize, ops_per_txn: usize| -> ShardedRunStats {
        let spec = DeploymentSpec::new(SHARDS, 3)
            .with_seed(13)
            .with_clients(48, operations)
            .with_shard_policy(0, ShardPolicy::confidential());
        let mut cluster = ShardedCluster::<RaftReplica>::build(spec);
        let router = cluster.router().clone();
        let workload = TxnWorkloadSpec {
            base: WorkloadSpec {
                seed: 13,
                read_ratio: 0.5,
                ..WorkloadSpec::default()
            },
            txn_fraction,
            ops_per_txn,
            fan_out,
        };
        let generator = RefCell::new(workload.generator());
        cluster.run_requests(move |_client, _seq| {
            let request = generator
                .borrow_mut()
                .next_request(&|key| router.shard_for_key(key));
            Some(recipe_shard::request_from_workload(request))
        })
    };

    let fractions = [0.0f64, 0.25, 0.5, 1.0];
    let fanouts = [1usize, 2, 3, 4];
    let mut rows = Vec::new();
    let mut sweep = Vec::new();
    for &fraction in &fractions {
        sweep.push(run_step(fraction, 2, 3));
    }
    let single_key_ops = sweep[0].total.throughput_ops;
    for (stats, &fraction) in sweep.iter().zip(&fractions) {
        rows.push(ExperimentRow {
            protocol: "R-Raft 4 shards".into(),
            config: format!("txn={:.0}%", fraction * 100.0),
            throughput_ops: stats.total.throughput_ops,
            mean_latency_us: stats.total.mean_latency_us,
            speedup_vs_baseline: stats.total.throughput_ops / single_key_ops,
        });
    }
    for &fan_out in &fanouts {
        let stats = run_step(0.5, fan_out, 4);
        rows.push(ExperimentRow {
            protocol: "R-Raft 4 shards".into(),
            config: format!("fanout={fan_out}"),
            throughput_ops: stats.total.throughput_ops,
            mean_latency_us: stats.total.mean_latency_us,
            speedup_vs_baseline: stats.total.throughput_ops / single_key_ops,
        });
        sweep.push(stats);
    }
    TxnReport {
        rows,
        sweep,
        single_key_ops,
    }
}

/// Results of the observability experiment: the driver statistics plus the
/// telemetry report scraped from the run (absent when telemetry was off).
#[derive(Debug)]
pub struct ObserveReport {
    /// The driver statistics of the run.
    pub stats: ShardedRunStats,
    /// Spans, metrics and per-shard cost attribution; `None` when the run
    /// was executed with telemetry disabled.
    pub telemetry: Option<TelemetryReport>,
}

/// Observability experiment: a mixed single-key / cross-shard-transaction /
/// online-migration workload on two 3-replica R-Raft shards, shard 0
/// confidential. Every 8th request is a fan-out-2 transaction through 2PC;
/// the single-key stream starts balanced and then funnels into a hot range
/// on the confidential shard so the rebalancing controller migrates it away
/// mid-run. The same seed with `telemetry` on and off produces bit-identical
/// [`ShardedRunStats`] — telemetry only observes the virtual clock.
pub fn fig_observe(operations: usize, telemetry: bool) -> ObserveReport {
    let balanced_ops = (operations * 7) / 32;
    let bucket_ns = 5_000_000u64;
    let mut spec = DeploymentSpec::new(2, 3)
        .with_seed(9)
        .with_clients(64, operations)
        .with_shard_policy(0, ShardPolicy::confidential())
        .with_rebalance(RebalanceConfig {
            check_interval_ns: 10_000_000,
            min_window_commits: 120,
            imbalance_threshold: 1.4,
            timeline_bucket_ns: bucket_ns,
            ..RebalanceConfig::enabled()
        });
    if telemetry {
        spec = spec.with_telemetry(TelemetryConfig::enabled());
    }
    let mut cluster = ShardedCluster::<RaftReplica>::build(spec);
    let hot = hot_range_on_shard(cluster.router(), 0, 48, 2);
    let router = cluster.router().clone();
    let txn_workload = TxnWorkloadSpec {
        base: WorkloadSpec {
            seed: 9,
            read_ratio: 0.5,
            ..WorkloadSpec::default()
        },
        txn_fraction: 1.0,
        ops_per_txn: 2,
        fan_out: 2,
    };
    let generator = RefCell::new(txn_workload.generator());
    let issued = std::cell::Cell::new(0usize);
    let stats = cluster.run_requests(move |client, seq| {
        let n = issued.get();
        issued.set(n + 1);
        if n % 8 == 7 {
            let request = generator
                .borrow_mut()
                .next_request(&|key| router.shard_for_key(key));
            return Some(recipe_shard::request_from_workload(request));
        }
        let key = if n < balanced_ops {
            format!("user{:08}", (client * 131 + seq * 17) % 10_000).into_bytes()
        } else {
            hot[n % hot.len()].clone()
        };
        Some(Request::Single(Operation::Put {
            key,
            value: vec![0xAB; 64],
        }))
    });
    let telemetry = cluster.take_telemetry_report();
    ObserveReport { stats, telemetry }
}

/// Checks that a telemetry report's per-shard cost attribution reconciles:
/// for every shard, busy + idle nanoseconds must equal `replicas ×
/// elapsed_ns` within `tolerance` (fraction). Returns the violations,
/// human-readable; empty means every shard reconciles.
pub fn attribution_reconciliation(report: &TelemetryReport, tolerance: f64) -> Vec<String> {
    let mut violations = Vec::new();
    if report.attribution.is_empty() {
        violations.push("telemetry report carries no shard attribution".into());
    }
    for shard in &report.attribution {
        let capacity = shard.capacity_ns() as f64;
        let accounted = shard.busy.total() as f64;
        if capacity == 0.0 {
            violations.push(format!("shard {}: zero capacity", shard.shard));
            continue;
        }
        let error = (accounted - capacity).abs() / capacity;
        if error > tolerance {
            violations.push(format!(
                "shard {}: attribution accounts for {accounted:.0} of {capacity:.0} \
                 capacity ns ({:.2}% off, tolerance {:.2}%)",
                shard.shard,
                error * 100.0,
                tolerance * 100.0
            ));
        }
    }
    violations
}

/// Results of the crash-recovery failover experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailoverReport {
    /// Crash-free vs crashed throughput for both scenarios; "speedup" is
    /// relative to the scenario's own crash-free twin.
    pub rows: Vec<ExperimentRow>,
    /// Crash-free transactional run (the 2PC yardstick).
    pub baseline_2pc: ShardedRunStats,
    /// The same run with the shard-0 leader crashed mid-2PC and recovered.
    pub crash_2pc: ShardedRunStats,
    /// Crash-free mixed single/txn/migration run (the migration yardstick).
    pub baseline_migration: ShardedRunStats,
    /// The same run with the donor-shard leader crashed mid-migration.
    pub crash_migration: ShardedRunStats,
    /// When the 2PC participant leader was crashed, virtual ns.
    pub crash_at_ns: u64,
    /// When it restarted (rollback-protected), virtual ns.
    pub recover_at_ns: u64,
    /// Crash until aggregate throughput climbed back to 80% of the
    /// pre-crash steady rate, from the crashed run's timeline, virtual ns.
    pub time_to_recover_ns: u64,
    /// Mean aggregate throughput of the crashed 2PC run before the crash,
    /// ops/s.
    pub steady_ops: f64,
    /// Deepest timeline bucket between the crash and the recovery point,
    /// ops/s — the throughput dip the failover machinery bounds.
    pub dip_floor_ops: f64,
}

/// Crash-recovery failover experiment (beyond the paper): kill a participant
/// group's leader and watch the fault plane put the deployment back together
/// with zero lost or duplicated commits.
///
/// Two scenarios, each measured against its own crash-free twin:
///
/// * **mid-2PC** — three 3-replica R-Raft shards under a 100%-transaction
///   workload (fan-out 2, so nearly every commit crosses shards); shard 0's
///   leader is crashed a quarter of the way through the run and restarts
///   rollback-protected halfway through. In-flight transactions park on the
///   coordinator's retry queue, the replicated prepare records let the next
///   leader adopt the staged locks, and every transaction resolves: the run
///   must end with `committed == txn.committed_ops` and no crashed nodes.
/// * **mid-migration** — the observability deployment (two shards, mixed
///   single/transaction traffic funnelling into a hot range that the
///   controller migrates off shard 0); the donor shard's leader is crashed
///   just before the baseline's cutover point. The migration must still
///   complete and the commit target must still be reached.
///
/// The crash schedule is derived from the crash-free twin's measured
/// duration, so the experiment stays meaningful across operation counts —
/// and stays deterministic, because the twin is deterministic. Runs much
/// below ~1600 operations end before the migration controller can act and
/// fail the migration-twin assertion rather than silently skipping the
/// scenario.
pub fn fig_failover(operations: usize) -> FailoverReport {
    let run_txn = |crash: Option<CrashPlan>, bucket_ns: u64| -> ShardedRunStats {
        let mut spec = DeploymentSpec::new(3, 3)
            .with_seed(17)
            .with_clients(24, operations)
            .with_timeline_bucket_ns(bucket_ns);
        if let Some(plan) = crash {
            spec = spec.with_shard_policy(0, ShardPolicy::new().with_crash_plan(plan));
        }
        let mut cluster = ShardedCluster::<RaftReplica>::build(spec);
        let router = cluster.router().clone();
        let workload = TxnWorkloadSpec {
            base: WorkloadSpec {
                seed: 17,
                read_ratio: 0.5,
                ..WorkloadSpec::default()
            },
            txn_fraction: 1.0,
            ops_per_txn: 3,
            fan_out: 2,
        };
        let generator = RefCell::new(workload.generator());
        let stats = cluster.run_requests(move |_client, _seq| {
            let request = generator
                .borrow_mut()
                .next_request(&|key| router.shard_for_key(key));
            Some(recipe_shard::request_from_workload(request))
        });
        for shard in 0..cluster.shards() {
            assert!(
                cluster.shard(shard).crashed_nodes().is_empty(),
                "shard {shard}: crashed node never recovered"
            );
        }
        stats
    };

    // Crash-free twin first: its measured duration places the crash and
    // sizes the timeline buckets for the crashed run.
    let baseline_2pc = run_txn(None, 0);
    let elapsed_ns = (baseline_2pc.total.elapsed_secs * 1e9) as u64;
    let crash_at_ns = (elapsed_ns / 4).max(100_000);
    let recover_at_ns = crash_at_ns + (elapsed_ns / 4).max(100_000);
    let bucket_ns = (elapsed_ns / 32).max(50_000);

    let crash_2pc = run_txn(
        Some(CrashPlan::none().crash_recover(NodeId(0), crash_at_ns, recover_at_ns)),
        bucket_ns,
    );
    // Zero lost, zero duplicated: the driver drained the full target and —
    // the workload being 100% transactions — every committed operation is
    // accounted to a committed transaction exactly once.
    assert!(crash_2pc.total.committed >= operations as u64);
    assert_eq!(crash_2pc.total.committed, crash_2pc.txn.committed_ops);

    // Time-to-recover off the crashed run's timeline: steady rate is the
    // mean of the buckets fully before the crash; recovery is the first
    // bucket after the crash back at 80% of it.
    let timeline = &crash_2pc.timeline;
    let pre: Vec<u64> = timeline
        .iter()
        .filter(|b| b.end_ns <= crash_at_ns)
        .map(|b| b.committed)
        .collect();
    let bucket_secs = bucket_ns as f64 / 1e9;
    let steady_buckets = if pre.is_empty() {
        crash_2pc.total.throughput_ops * bucket_secs
    } else {
        pre.iter().sum::<u64>() as f64 / pre.len() as f64
    };
    let steady_ops = steady_buckets / bucket_secs;
    let mut time_to_recover_ns = 0u64;
    let mut dip_floor_ops = steady_ops;
    for bucket in timeline.iter().filter(|b| b.end_ns > crash_at_ns) {
        dip_floor_ops = dip_floor_ops.min(bucket.committed as f64 / bucket_secs);
        if (bucket.committed as f64) >= 0.8 * steady_buckets {
            time_to_recover_ns = bucket.end_ns.saturating_sub(crash_at_ns);
            break;
        }
    }

    // Mid-migration scenario: the observability deployment, with the donor
    // shard's leader crashed shortly before the crash-free twin's cutover.
    let run_migration = |crash: Option<CrashPlan>| -> ShardedRunStats {
        let balanced_ops = (operations * 7) / 32;
        let mut spec = DeploymentSpec::new(2, 3)
            .with_seed(9)
            .with_clients(64, operations)
            .with_rebalance(RebalanceConfig {
                check_interval_ns: 10_000_000,
                min_window_commits: 120,
                imbalance_threshold: 1.4,
                timeline_bucket_ns: 5_000_000,
                ..RebalanceConfig::enabled()
            });
        if let Some(plan) = crash {
            spec = spec.with_shard_policy(0, ShardPolicy::new().with_crash_plan(plan));
        }
        let mut cluster = ShardedCluster::<RaftReplica>::build(spec);
        let hot = hot_range_on_shard(cluster.router(), 0, 48, 2);
        let router = cluster.router().clone();
        let txn_workload = TxnWorkloadSpec {
            base: WorkloadSpec {
                seed: 9,
                read_ratio: 0.5,
                ..WorkloadSpec::default()
            },
            txn_fraction: 1.0,
            ops_per_txn: 2,
            fan_out: 2,
        };
        let generator = RefCell::new(txn_workload.generator());
        let issued = std::cell::Cell::new(0usize);
        let stats = cluster.run_requests(move |client, seq| {
            let n = issued.get();
            issued.set(n + 1);
            if n % 8 == 7 {
                let request = generator
                    .borrow_mut()
                    .next_request(&|key| router.shard_for_key(key));
                return Some(recipe_shard::request_from_workload(request));
            }
            let key = if n < balanced_ops {
                format!("user{:08}", (client * 131 + seq * 17) % 10_000).into_bytes()
            } else {
                hot[n % hot.len()].clone()
            };
            Some(Request::Single(Operation::Put {
                key,
                value: vec![0xAB; 64],
            }))
        });
        for shard in 0..cluster.shards() {
            assert!(
                cluster.shard(shard).crashed_nodes().is_empty(),
                "shard {shard}: crashed node never recovered"
            );
        }
        stats
    };

    let baseline_migration = run_migration(None);
    assert!(
        baseline_migration.migration.migrations_completed >= 1,
        "crash-free migration twin never migrated; crash placement would be meaningless"
    );
    let cutover_ns = baseline_migration.migration.last_cutover_ns;
    let migration_crash_ns = (cutover_ns * 7 / 8).max(100_000);
    let migration_recover_ns = migration_crash_ns + (cutover_ns / 4).max(100_000);
    let crash_migration = run_migration(Some(CrashPlan::none().crash_recover(
        NodeId(0),
        migration_crash_ns,
        migration_recover_ns,
    )));
    assert!(crash_migration.total.committed >= operations as u64);
    assert!(
        crash_migration.migration.migrations_completed >= 1,
        "migration did not survive the donor leader crash"
    );

    let rows = vec![
        ExperimentRow {
            protocol: "R-Raft 3 shards, 100% txn".into(),
            config: "crash-free".into(),
            throughput_ops: baseline_2pc.total.throughput_ops,
            mean_latency_us: baseline_2pc.total.mean_latency_us,
            speedup_vs_baseline: 1.0,
        },
        ExperimentRow {
            protocol: "R-Raft 3 shards, 100% txn".into(),
            config: "leader crash mid-2PC".into(),
            throughput_ops: crash_2pc.total.throughput_ops,
            mean_latency_us: crash_2pc.total.mean_latency_us,
            speedup_vs_baseline: crash_2pc.total.throughput_ops / baseline_2pc.total.throughput_ops,
        },
        ExperimentRow {
            protocol: "R-Raft 2 shards, migration".into(),
            config: "crash-free".into(),
            throughput_ops: baseline_migration.total.throughput_ops,
            mean_latency_us: baseline_migration.total.mean_latency_us,
            speedup_vs_baseline: 1.0,
        },
        ExperimentRow {
            protocol: "R-Raft 2 shards, migration".into(),
            config: "donor leader crash".into(),
            throughput_ops: crash_migration.total.throughput_ops,
            mean_latency_us: crash_migration.total.mean_latency_us,
            speedup_vs_baseline: crash_migration.total.throughput_ops
                / baseline_migration.total.throughput_ops,
        },
    ];
    FailoverReport {
        rows,
        baseline_2pc,
        crash_2pc,
        baseline_migration,
        crash_migration,
        crash_at_ns,
        recover_at_ns,
        time_to_recover_ns,
        steady_ops,
        dip_floor_ops,
    }
}

/// The summary of a `fig_failover` run: crash-free and crashed throughput
/// for both scenarios (gated) plus the recovery figures and the commit
/// counters that must stay non-degenerate.
pub fn failover_summary(report: &FailoverReport) -> BenchSummary {
    let mut summary = BenchSummary {
        bench: "fig_failover".into(),
        metrics: vec![
            BenchMetric {
                name: "crash_free_2pc_ops_per_sec".into(),
                value: report.baseline_2pc.total.throughput_ops,
            },
            BenchMetric {
                name: "leader_crash_2pc_ops_per_sec".into(),
                value: report.crash_2pc.total.throughput_ops,
            },
            BenchMetric {
                name: "crash_free_migration_ops_per_sec".into(),
                value: report.baseline_migration.total.throughput_ops,
            },
            BenchMetric {
                name: "donor_leader_crash_migration_ops_per_sec".into(),
                value: report.crash_migration.total.throughput_ops,
            },
            BenchMetric {
                name: "time_to_recover_ms".into(),
                value: report.time_to_recover_ns as f64 / 1e6,
            },
            // Deliberately not `_ops_per_sec`: the dip depth is reported,
            // not gated — it measures the outage, not a regression.
            BenchMetric {
                name: "dip_floor_ops".into(),
                value: report.dip_floor_ops,
            },
            BenchMetric {
                name: "steady_state_ops".into(),
                value: report.steady_ops,
            },
            BenchMetric {
                name: "crash_2pc_committed".into(),
                value: report.crash_2pc.total.committed as f64,
            },
            BenchMetric {
                name: "crash_2pc_txn_committed_ops".into(),
                value: report.crash_2pc.txn.committed_ops as f64,
            },
            BenchMetric {
                name: "crash_migrations_completed".into(),
                value: report.crash_migration.migration.migrations_completed as f64,
            },
        ],
    };
    summary
        .metrics
        .extend(latency_metrics("crash_2pc_", &report.crash_2pc.total));
    summary
}

/// The outcome of `fig_tenancy`: noisy-neighbour containment under the
/// tenant gateway's token-bucket admission control.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenancyReport {
    /// Solo vs contended throughput; "speedup" is relative to the solo twin.
    pub rows: Vec<ExperimentRow>,
    /// The three well-behaved tenants running alone (the yardstick).
    pub solo: ShardedRunStats,
    /// The same quiet tenants plus a noisy tenant whose clients demand ~10×
    /// its quota, clamped by the gateway's token bucket.
    pub contained: ShardedRunStats,
    /// The quota the noisy tenant was clamped to, ops per virtual second.
    pub noisy_quota_ops_per_sec: u64,
    /// Relative p99 degradation the quiet tenants suffered:
    /// `contained_p99 / solo_p99 - 1`.
    pub p99_degradation: f64,
}

/// Runs the multi-tenant noisy-neighbour experiment: three quiet tenants
/// establish a solo baseline, then a fourth tenant joins whose closed-loop
/// demand is ~10× the quota it is granted. The gateway's deterministic token
/// bucket defers the excess before it reaches the router, so the quiet
/// tenants' p99 stays within 10% of their solo baseline — the containment
/// bound this figure asserts.
pub fn fig_tenancy(operations: usize) -> TenancyReport {
    const QUIET: [&str; 3] = ["alpha", "beta", "gamma"];
    const CLIENTS_PER_TENANT: usize = 6;
    let run = |tenants: Vec<TenantSpec>| -> ShardedRunStats {
        let count = tenants.len();
        let clients = count * CLIENTS_PER_TENANT;
        let mut gateway = GatewayConfig::enabled();
        for tenant in tenants {
            gateway = gateway.with_tenant(tenant);
        }
        let spec = DeploymentSpec::new(2, 3)
            .with_seed(23)
            .with_clients(clients, operations)
            .with_gateway(gateway);
        let mut cluster = ShardedCluster::<RaftReplica>::build(spec);
        // Every tenant runs the same YCSB mix; per-client streams derive
        // from the mix seed, so adding the noisy tenant leaves the quiet
        // tenants' request sequences untouched.
        let mix = TenantMixSpec::uniform(
            count,
            WorkloadSpec {
                seed: 23,
                ..WorkloadSpec::ycsb(0.5, 256)
            },
        );
        let generators = RefCell::new(mix.generators(clients));
        cluster.run_requests(move |client, _seq| {
            let op = generators.borrow_mut()[client as usize].next_op();
            Some(recipe_shard::request_from_workload(
                WorkloadRequest::Single(op),
            ))
        })
    };

    let solo = run(QUIET.iter().map(|n| TenantSpec::new(*n)).collect());
    // Grant the noisy tenant a tenth of one solo fair share: its six clients
    // would claim a full share if unthrottled, so demand lands at ~10× quota.
    let fair_share = solo.total.throughput_ops / QUIET.len() as f64;
    let noisy_quota = ((fair_share / 10.0).ceil() as u64).max(1);
    let mut tenants: Vec<TenantSpec> = QUIET.iter().map(|n| TenantSpec::new(*n)).collect();
    // A tight burst (not the default quota/10): the default would hand the
    // noisy tenant a free opening burst the size of a whole smoke run.
    tenants.push(
        TenantSpec::new("noisy")
            .with_quota(noisy_quota)
            .with_burst(4),
    );
    let contained = run(tenants);

    // The bucket must have actually clamped the noisy tenant...
    let noisy = contained
        .gateway
        .tenants
        .iter()
        .find(|t| t.tenant == "noisy")
        .expect("noisy tenant accounted");
    assert!(
        noisy.throttled > 0,
        "the noisy tenant was never throttled; the experiment exercised nothing"
    );
    // ...without starving it outright, and every quiet tenant kept working.
    assert!(noisy.committed_ops > 0, "noisy tenant starved to zero");
    for name in QUIET {
        let t = contained
            .gateway
            .tenants
            .iter()
            .find(|t| t.tenant == name)
            .expect("quiet tenant accounted");
        assert!(t.committed_ops > 0, "tenant {name} committed nothing");
        assert_eq!(t.rejected, 0, "tenant {name} spuriously rejected");
    }
    // The containment bound itself: the noisy tenant's 10× overload moves
    // the quiet tenants' p99 by less than 10%.
    let p99_degradation = contained.total.p99_latency_us / solo.total.p99_latency_us - 1.0;
    assert!(
        p99_degradation < 0.10,
        "noisy neighbour not contained: p99 {:.1} us -> {:.1} us (+{:.1}%)",
        solo.total.p99_latency_us,
        contained.total.p99_latency_us,
        p99_degradation * 100.0
    );

    let rows = vec![
        ExperimentRow {
            protocol: "R-Raft 2 shards, 3 tenants".into(),
            config: "solo (quiet tenants only)".into(),
            throughput_ops: solo.total.throughput_ops,
            mean_latency_us: solo.total.mean_latency_us,
            speedup_vs_baseline: 1.0,
        },
        ExperimentRow {
            protocol: "R-Raft 2 shards, 4 tenants".into(),
            config: "noisy tenant at 10x quota".into(),
            throughput_ops: contained.total.throughput_ops,
            mean_latency_us: contained.total.mean_latency_us,
            speedup_vs_baseline: contained.total.throughput_ops / solo.total.throughput_ops,
        },
    ];
    TenancyReport {
        rows,
        solo,
        contained,
        noisy_quota_ops_per_sec: noisy_quota,
        p99_degradation,
    }
}

/// The summary of a `fig_tenancy` run: solo and contended throughput
/// (gated) plus the containment figures and per-tenant admission counters.
pub fn tenancy_summary(report: &TenancyReport) -> BenchSummary {
    let mut summary = BenchSummary {
        bench: "fig_tenancy".into(),
        metrics: vec![
            BenchMetric {
                name: "solo_quiet_ops_per_sec".into(),
                value: report.solo.total.throughput_ops,
            },
            BenchMetric {
                name: "contained_ops_per_sec".into(),
                value: report.contained.total.throughput_ops,
            },
            // Informational (not `_ops_per_sec`): the quota is an input knob
            // derived from the solo run, not a measured rate to gate.
            BenchMetric {
                name: "noisy_quota_ops".into(),
                value: report.noisy_quota_ops_per_sec as f64,
            },
            BenchMetric {
                name: "p99_degradation_pct".into(),
                value: report.p99_degradation * 100.0,
            },
        ],
    };
    for t in &report.contained.gateway.tenants {
        summary.metrics.push(BenchMetric {
            name: format!("{}_committed_ops", metric_slug(&t.tenant)),
            value: t.committed_ops as f64,
        });
        summary.metrics.push(BenchMetric {
            name: format!("{}_throttled", metric_slug(&t.tenant)),
            value: t.throttled as f64,
        });
    }
    summary
        .metrics
        .extend(latency_metrics("solo_", &report.solo.total));
    summary
        .metrics
        .extend(latency_metrics("contained_", &report.contained.total));
    summary
}

/// The summary of a `fig_txn` run: aggregate ops/s per sweep step (gated)
/// plus the transaction counters that must stay non-degenerate.
pub fn txn_summary(report: &TxnReport) -> BenchSummary {
    let mut metrics: Vec<BenchMetric> = report
        .rows
        .iter()
        .map(|row| BenchMetric {
            name: format!("{}_ops_per_sec", metric_slug(&row.config)),
            value: row.throughput_ops,
        })
        .collect();
    metrics.push(BenchMetric {
        name: "txns_committed".into(),
        value: report
            .sweep
            .iter()
            .map(|s| s.txn.committed as f64)
            .sum::<f64>(),
    });
    metrics.push(BenchMetric {
        name: "txns_aborted".into(),
        value: report
            .sweep
            .iter()
            .map(|s| s.txn.aborted as f64)
            .sum::<f64>(),
    });
    metrics.push(BenchMetric {
        name: "sealed_2pc_frames".into(),
        value: report
            .sweep
            .iter()
            .map(|s| s.txn.sealed_frames as f64)
            .sum::<f64>(),
    });
    metrics.push(BenchMetric {
        name: "cross_shard_committed".into(),
        value: report
            .sweep
            .iter()
            .map(|s| s.txn.cross_shard_committed as f64)
            .sum::<f64>(),
    });
    metrics.push(BenchMetric {
        name: "committed".into(),
        value: report
            .sweep
            .iter()
            .map(|s| s.total.committed as f64)
            .sum::<f64>(),
    });
    for (row, stats) in report.rows.iter().zip(&report.sweep) {
        metrics.extend(latency_metrics(
            &format!("{}_", metric_slug(&row.config)),
            &stats.total,
        ));
    }
    BenchSummary {
        bench: "fig_txn".into(),
        metrics,
    }
}

/// The summary of a `fig_confidential_policy` run: aggregate ops/s per sweep
/// step (gated) plus the latency-split ratios (informational).
pub fn confidential_policy_summary(report: &ConfidentialPolicyReport) -> BenchSummary {
    let mut metrics: Vec<BenchMetric> = report
        .rows
        .iter()
        .enumerate()
        .map(|(n, row)| BenchMetric {
            name: format!("conf_shards_{n}_of_4_ops_per_sec"),
            value: row.throughput_ops,
        })
        .collect();
    metrics.push(BenchMetric {
        name: "plaintext_latency_ratio".into(),
        value: report.plaintext_latency_ratio,
    });
    metrics.push(BenchMetric {
        name: "confidential_latency_overhead".into(),
        value: report.confidential_latency_overhead,
    });
    metrics.push(BenchMetric {
        name: "committed".into(),
        value: report
            .sweep
            .iter()
            .map(|s| s.total.committed as f64)
            .sum::<f64>(),
    });
    for (n, stats) in report.sweep.iter().enumerate() {
        metrics.extend(latency_metrics(
            &format!("conf_shards_{n}_of_4_"),
            &stats.total,
        ));
    }
    BenchSummary {
        bench: "fig_confidential_policy".into(),
        metrics,
    }
}

/// Runs one sharded configuration: `shards` groups of 3 replicas, a global
/// closed-loop client population and the default YCSB Zipfian workload.
pub fn run_sharded(kind: ProtocolKind, shards: usize, operations: usize) -> ShardedRunStats {
    // Enough concurrency that a single leader saturates; fixed across shard
    // counts so the sweep measures service capacity, not load.
    let spec = DeploymentSpec::new(shards, 3)
        .with_seed(7)
        .with_clients(64, operations);
    let workload = WorkloadSpec {
        seed: 7,
        ..WorkloadSpec::default()
    };
    let mut cluster = match kind {
        ProtocolKind::RRaft => ShardedCluster::build_with(spec, |shard, id, m, policy| {
            ShardReplica::Raft(RaftReplica::build_replica(shard, id, m, policy))
        }),
        ProtocolKind::RAbd => ShardedCluster::build_with(spec, |shard, id, m, policy| {
            ShardReplica::Abd(AbdReplica::build_replica(shard, id, m, policy))
        }),
        other => panic!("shard scaling is defined for R-Raft and R-ABD, not {other:?}"),
    };
    let generator = RefCell::new(workload.generator());
    cluster
        .run(move |_client, _seq| recipe_shard::op_from_workload(generator.borrow_mut().next_op()))
}

/// A replica that is either R-Raft or R-ABD, so one sharded driver type can
/// host both sweep protocols.
// One replica of each variant exists per shard — the size difference between
// the two is irrelevant at that population.
#[allow(clippy::large_enum_variant)]
pub enum ShardReplica {
    /// Recipe-transformed Raft.
    Raft(RaftReplica),
    /// Recipe-transformed ABD.
    Abd(AbdReplica),
}

impl Replica for ShardReplica {
    fn id(&self) -> recipe_net::NodeId {
        match self {
            ShardReplica::Raft(r) => r.id(),
            ShardReplica::Abd(r) => r.id(),
        }
    }

    fn on_client_request(
        &mut self,
        request: recipe_core::ClientRequest,
        ctx: &mut recipe_sim::Ctx,
    ) {
        match self {
            ShardReplica::Raft(r) => r.on_client_request(request, ctx),
            ShardReplica::Abd(r) => r.on_client_request(request, ctx),
        }
    }

    fn on_message(&mut self, from: recipe_net::NodeId, bytes: &[u8], ctx: &mut recipe_sim::Ctx) {
        match self {
            ShardReplica::Raft(r) => r.on_message(from, bytes, ctx),
            ShardReplica::Abd(r) => r.on_message(from, bytes, ctx),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut recipe_sim::Ctx) {
        match self {
            ShardReplica::Raft(r) => r.on_timer(token, ctx),
            ShardReplica::Abd(r) => r.on_timer(token, ctx),
        }
    }

    fn coordinates_writes(&self) -> bool {
        match self {
            ShardReplica::Raft(r) => r.coordinates_writes(),
            ShardReplica::Abd(r) => r.coordinates_writes(),
        }
    }

    fn coordinates_reads(&self) -> bool {
        match self {
            ShardReplica::Raft(r) => r.coordinates_reads(),
            ShardReplica::Abd(r) => r.coordinates_reads(),
        }
    }

    fn protocol_name(&self) -> &'static str {
        match self {
            ShardReplica::Raft(r) => r.protocol_name(),
            ShardReplica::Abd(r) => r.protocol_name(),
        }
    }

    fn txn_prepare(&mut self, txn_id: u64, ops: &[recipe_core::Operation]) -> recipe_sim::TxnVote {
        match self {
            ShardReplica::Raft(r) => r.txn_prepare(txn_id, ops),
            ShardReplica::Abd(r) => r.txn_prepare(txn_id, ops),
        }
    }

    fn txn_commit(&mut self, txn_id: u64) -> Vec<recipe_sim::RangeEntry> {
        match self {
            ShardReplica::Raft(r) => r.txn_commit(txn_id),
            ShardReplica::Abd(r) => r.txn_commit(txn_id),
        }
    }

    fn txn_abort(&mut self, txn_id: u64) {
        match self {
            ShardReplica::Raft(r) => r.txn_abort(txn_id),
            ShardReplica::Abd(r) => r.txn_abort(txn_id),
        }
    }
}

impl recipe_sim::RangeStateTransfer for ShardReplica {
    fn export_range(
        &mut self,
        filter: &dyn Fn(&[u8]) -> bool,
    ) -> Result<Vec<recipe_sim::RangeEntry>, String> {
        match self {
            ShardReplica::Raft(r) => r.export_range(filter),
            ShardReplica::Abd(r) => r.export_range(filter),
        }
    }

    fn read_entry(&mut self, key: &[u8]) -> Result<Option<recipe_sim::RangeEntry>, String> {
        match self {
            ShardReplica::Raft(r) => r.read_entry(key),
            ShardReplica::Abd(r) => r.read_entry(key),
        }
    }

    fn import_range(&mut self, entries: &[recipe_sim::RangeEntry]) {
        match self {
            ShardReplica::Raft(r) => r.import_range(entries),
            ShardReplica::Abd(r) => r.import_range(entries),
        }
    }

    fn evict_range(&mut self, filter: &dyn Fn(&[u8]) -> bool) -> usize {
        match self {
            ShardReplica::Raft(r) => r.evict_range(filter),
            ShardReplica::Abd(r) => r.evict_range(filter),
        }
    }
}

/// Table 4: end-to-end attestation latency through the Recipe CAS vs through the
/// vendor IAS, averaged over `rounds` attestations each.
pub fn table4_attestation(rounds: usize) -> Vec<(String, f64, f64)> {
    use recipe_tee::{EnclaveConfig, EnclaveId};

    fn run_path<V: QuoteVerifier>(verifier: &mut V, rounds: usize) -> f64 {
        use rand::SeedableRng;
        use recipe_tee::{Enclave, EnclaveConfig, EnclaveId};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut total_ns = 0u64;
        for i in 0..rounds {
            let mut enclave = Enclave::launch(
                EnclaveId(i as u64),
                EnclaveConfig::new("recipe-replica-v1", 1),
            );
            let bundle = SecretBundle {
                node_id: i as u64,
                signing_seed: vec![7u8; 32],
                channel_keys: Default::default(),
                cipher_key: None,
                config: recipe_attest::ClusterConfig::for_replicas(3, 1, "recipe-replica-v1"),
            };
            let outcome =
                recipe_attest::run_remote_attestation(verifier, &mut enclave, &bundle, &mut rng)
                    .expect("attestation succeeds");
            total_ns += outcome.latency_ns;
        }
        total_ns as f64 / rounds as f64 / 1e9
    }

    // Both services must trust platform 1's vendor key.
    let vendor =
        recipe_tee::Enclave::launch(EnclaveId(1000), EnclaveConfig::new("recipe-replica-v1", 1))
            .platform_vendor_key();
    let mut cas = ConfigAndAttestService::new(vec![(1, vendor)], 5);
    let mut ias = IntelAttestationService::new(vec![(1, vendor)], 5);
    let cas_mean = run_path(&mut cas, rounds);
    let ias_mean = run_path(&mut ias, rounds);
    vec![
        ("Recipe CAS".to_string(), cas_mean, ias_mean / cas_mean),
        ("IAS".to_string(), ias_mean, 1.0),
    ]
}

// ---------------------------------------------------------------------------
// Machine-readable summaries + CI perf-regression gate
// ---------------------------------------------------------------------------

/// One named figure of a benchmark summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchMetric {
    /// Metric name; names ending in `_ops_per_sec` are gated (higher is
    /// better) by [`perf_gate_compare`].
    pub name: String,
    /// Measured value.
    pub value: f64,
}

/// Machine-readable summary one benchmark run emits as `BENCH_<name>.json`.
/// The simulator is deterministic, so the checked-in baselines under
/// `crates/bench/baselines/` reproduce bit-for-bit on any machine; the CI
/// perf gate compares a fresh smoke run against them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSummary {
    /// Benchmark name (e.g. `fig_batching`).
    pub bench: String,
    /// The summary figures.
    pub metrics: Vec<BenchMetric>,
}

impl BenchSummary {
    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }
}

/// Lower-cases a protocol/config label into a metric-name slug
/// (`"R-Raft (conf.)"` → `"r_raft_conf"`).
pub fn metric_slug(label: &str) -> String {
    let mut slug = String::new();
    let mut last_sep = true;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c.to_ascii_lowercase());
            last_sep = false;
        } else if !last_sep {
            slug.push('_');
            last_sep = true;
        }
    }
    slug.trim_end_matches('_').to_string()
}

/// Latency-percentile metrics (`<prefix>p50_us` … `<prefix>p999_us`) off a
/// run's latency distribution. Percentile names never end in `_ops_per_sec`,
/// so the perf gate treats them as informational, not gated.
pub fn latency_metrics(prefix: &str, stats: &RunStats) -> Vec<BenchMetric> {
    [
        ("p50_us", stats.p50_latency_us),
        ("p90_us", stats.p90_latency_us),
        ("p99_us", stats.p99_latency_us),
        ("p999_us", stats.p999_latency_us),
    ]
    .into_iter()
    .map(|(name, value)| BenchMetric {
        name: format!("{prefix}{name}"),
        value,
    })
    .collect()
}

/// The committed-ops/sec summary of a `fig_batching` run: one metric per
/// (protocol, batch-size) row, plus the row's latency percentiles.
pub fn batching_summary(report: &BatchingReport) -> BenchSummary {
    let mut metrics: Vec<BenchMetric> = report
        .rows
        .iter()
        .map(|row| BenchMetric {
            name: format!(
                "{}_{}_ops_per_sec",
                metric_slug(&row.protocol),
                metric_slug(&row.config)
            ),
            value: row.throughput_ops,
        })
        .collect();
    for (row, stats) in report.rows.iter().zip(&report.stats) {
        metrics.extend(latency_metrics(
            &format!(
                "{}_{}_",
                metric_slug(&row.protocol),
                metric_slug(&row.config)
            ),
            stats,
        ));
    }
    BenchSummary {
        bench: "fig_batching".into(),
        metrics,
    }
}

/// The summary of a `fig_rebalance` run: phase throughputs, the recovery
/// ratio and the migration counters that must stay non-degenerate.
pub fn rebalance_summary(report: &RebalanceReport) -> BenchSummary {
    let mut summary = BenchSummary {
        bench: "fig_rebalance".into(),
        metrics: vec![
            BenchMetric {
                name: "pre_skew_ops_per_sec".into(),
                value: report.pre_skew_ops,
            },
            BenchMetric {
                name: "during_skew_ops_per_sec".into(),
                value: report.during_skew_ops,
            },
            BenchMetric {
                name: "post_cutover_ops_per_sec".into(),
                value: report.post_cutover_ops,
            },
            BenchMetric {
                name: "recovery_ratio".into(),
                // Guarded: a degenerate (tiny) run can have a zero pre-skew
                // phase, and a non-finite value would serialize as JSON null.
                value: if report.pre_skew_ops > 0.0 {
                    report.post_cutover_ops / report.pre_skew_ops
                } else {
                    0.0
                },
            },
            BenchMetric {
                name: "migrations_completed".into(),
                value: report.stats.migration.migrations_completed as f64,
            },
            BenchMetric {
                name: "committed".into(),
                value: report.stats.total.committed as f64,
            },
        ],
    };
    summary
        .metrics
        .extend(latency_metrics("total_", &report.stats.total));
    summary
}

/// Writes a summary as pretty JSON to `path`.
pub fn write_summary(path: &str, summary: &BenchSummary) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(summary)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json)
}

/// Compares a fresh run against a checked-in baseline: every `*_ops_per_sec`
/// metric of the baseline must be present and no more than `tolerance`
/// (fraction) below the baseline value. Returns the violations,
/// human-readable; empty means the gate passes. Improvements never fail.
pub fn perf_gate_compare(
    baseline: &BenchSummary,
    current: &BenchSummary,
    tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    for metric in &baseline.metrics {
        if !metric.name.ends_with("_ops_per_sec") {
            continue;
        }
        match current.metric(&metric.name) {
            None => violations.push(format!(
                "{}: metric {} missing from the current run",
                baseline.bench, metric.name
            )),
            Some(value) if value < metric.value * (1.0 - tolerance) => {
                violations.push(format!(
                    "{}: {} regressed {:.1}% ({:.0} -> {:.0} ops/s, tolerance {:.0}%)",
                    baseline.bench,
                    metric.name,
                    (1.0 - value / metric.value) * 100.0,
                    metric.value,
                    value,
                    tolerance * 100.0
                ));
            }
            Some(_) => {}
        }
    }
    violations
}

/// Pretty-prints experiment rows as an aligned text table.
pub fn print_rows(title: &str, rows: &[ExperimentRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<22} {:>12} {:>16} {:>14} {:>10}",
        "protocol", "config", "throughput(op/s)", "latency(us)", "speedup"
    );
    for row in rows {
        println!(
            "{:<22} {:>12} {:>16.0} {:>14.1} {:>9.2}x",
            row.protocol,
            row.config,
            row.throughput_ops,
            row.mean_latency_us,
            row.speedup_vs_baseline
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPS: usize = 400;

    #[test]
    fn recipe_protocols_beat_pbft_on_a_mixed_workload() {
        let pbft = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::Pbft,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        for kind in ProtocolKind::recipe_protocols() {
            let stats = run_protocol(&ExperimentConfig {
                protocol: kind,
                operations: OPS,
                ..ExperimentConfig::default()
            });
            let speedup = stats.throughput_ops / pbft.throughput_ops;
            assert!(
                speedup > 2.0,
                "{} only {speedup:.2}x faster than PBFT",
                kind.name()
            );
        }
    }

    #[test]
    fn confidentiality_costs_throughput_but_still_beats_pbft() {
        let plain = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::RChain,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        let confidential = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::RChain,
            confidential: true,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        let pbft = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::Pbft,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        assert!(confidential.throughput_ops <= plain.throughput_ops);
        assert!(confidential.throughput_ops > pbft.throughput_ops);
    }

    #[test]
    fn native_protocols_are_faster_than_their_recipe_versions() {
        let recipe = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::RRaft,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        let native = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::NativeRaft,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        let overhead = native.throughput_ops / recipe.throughput_ops;
        assert!(
            (1.2..=20.0).contains(&overhead),
            "overhead factor was {overhead:.2}"
        );
    }

    #[test]
    fn value_size_degrades_recipe_throughput() {
        let small = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::RRaft,
            read_ratio: 0.9,
            value_size: 256,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        let large = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::RRaft,
            read_ratio: 0.9,
            value_size: 4096,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        assert!(large.throughput_ops < small.throughput_ops);
    }

    #[test]
    fn table4_shows_the_cas_latency_advantage() {
        let rows = table4_attestation(20);
        let cas = &rows[0];
        let ias = &rows[1];
        assert!(cas.1 < ias.1);
        assert!(
            (10.0..=30.0).contains(&cas.2),
            "CAS speedup was {:.1}x",
            cas.2
        );
    }

    #[test]
    fn shard_scaling_doubles_r_raft_throughput_at_four_shards() {
        let rows = fig_shard_scaling(600);
        let speedup_of = |protocol: &str, config: &str| {
            rows.iter()
                .find(|r| r.protocol == protocol && r.config == config)
                .map(|r| r.speedup_vs_baseline)
                .unwrap()
        };
        assert_eq!(speedup_of("R-Raft", "1 shard"), 1.0);
        assert!(
            speedup_of("R-Raft", "4 shards") >= 2.0,
            "R-Raft 4-shard speedup {:.2}",
            speedup_of("R-Raft", "4 shards")
        );
        assert!(
            speedup_of("R-ABD", "4 shards") >= 2.0,
            "R-ABD 4-shard speedup {:.2}",
            speedup_of("R-ABD", "4 shards")
        );
        // More shards never hurt aggregate throughput in this sweep.
        for protocol in ["R-Raft", "R-ABD"] {
            assert!(speedup_of(protocol, "8 shards") > speedup_of(protocol, "4 shards"));
        }
    }

    #[test]
    fn batching_recovers_the_confidential_mode_tax() {
        let rows = fig_batching(400);
        let speedup_of = |protocol: &str, config: &str| {
            rows.iter()
                .find(|r| r.protocol == protocol && r.config == config)
                .map(|r| r.speedup_vs_baseline)
                .unwrap()
        };
        // The headline acceptance number: confidential R-Raft doubles (or
        // better) its per-leader committed-ops/sec at batch=16.
        assert_eq!(speedup_of("R-Raft (conf.)", "batch=1"), 1.0);
        let conf_16 = speedup_of("R-Raft (conf.)", "batch=16");
        assert!(conf_16 >= 2.0, "confidential batch=16 speedup {conf_16:.2}");
        // Bigger batches never hurt in this sweep, and the native baseline
        // gains too (less, since it never paid the shield overhead).
        assert!(speedup_of("R-Raft (conf.)", "batch=64") >= conf_16 * 0.9);
        let native_16 = speedup_of("Raft (native)", "batch=16");
        assert!(native_16 > 1.0, "native batch=16 speedup {native_16:.2}");
        assert!(native_16 < conf_16);
    }

    #[test]
    fn rebalance_recovers_throughput_with_zero_lost_commits() {
        // The default experiment size: small runs leave the post-cutover
        // window too short to average over.
        let operations = 3_200;
        let report = fig_rebalance(operations);
        // Zero lost / duplicated commits across the migration.
        assert_eq!(report.stats.total.committed, operations as u64);
        assert_eq!(
            report
                .stats
                .per_shard
                .iter()
                .map(|s| s.committed)
                .sum::<u64>(),
            report.stats.total.committed
        );
        // The migration ran, moved sealed bytes, and redirected clients.
        let m = &report.stats.migration;
        assert!(m.migrations_completed >= 1, "{m:?}");
        assert!(m.snapshot_bytes > 0 && m.redirects > 0, "{m:?}");
        // The skew depressed aggregate throughput; the cutover recovered it
        // to within 10% of the pre-skew level (the acceptance bar).
        assert!(
            report.during_skew_ops < 0.75 * report.pre_skew_ops,
            "skew never bit: pre {:.0} during {:.0}",
            report.pre_skew_ops,
            report.during_skew_ops
        );
        assert!(
            report.post_cutover_ops >= 0.9 * report.pre_skew_ops,
            "no recovery: pre {:.0} post {:.0}",
            report.pre_skew_ops,
            report.post_cutover_ops
        );
    }

    #[test]
    fn confidential_shards_pay_the_policy_cost_and_plaintext_shards_do_not() {
        let report = fig_confidential_policy(600);
        // Every sweep step committed exactly the asked-for operations — no
        // policy mix loses or duplicates commits.
        for stats in &report.sweep {
            assert_eq!(stats.total.committed, 600);
            assert_eq!(
                stats.per_shard.iter().map(|s| s.committed).sum::<u64>(),
                stats.total.committed
            );
        }
        // Aggregate throughput decays as the confidential fraction grows: the
        // all-confidential step is strictly slower than the all-plaintext
        // baseline, and the mixed steps sit in between (loosely — routing
        // noise can wobble neighbouring steps).
        let first = report.rows.first().unwrap().throughput_ops;
        let last = report.rows.last().unwrap().throughput_ops;
        assert!(
            last < first,
            "confidentiality should cost throughput: {first:.0} -> {last:.0} ops/s"
        );
        for row in &report.rows {
            assert!(
                row.throughput_ops <= first * 1.05 && row.throughput_ops >= last * 0.95,
                "step {} out of band: {:.0} ops/s (bounds {:.0}..{:.0})",
                row.config,
                row.throughput_ops,
                last * 0.95,
                first * 1.05
            );
        }
        // The cost lands exactly where the policy asks: confidential shards
        // serve visibly slower than their plaintext neighbours, while the
        // plaintext shards match the all-plaintext baseline within noise.
        assert!(
            report.confidential_latency_overhead > 1.02,
            "confidential shards show no overhead: {:.3}",
            report.confidential_latency_overhead
        );
        assert!(
            (0.9..=1.1).contains(&report.plaintext_latency_ratio),
            "plaintext shards drifted from the baseline: {:.3}",
            report.plaintext_latency_ratio
        );
        // The summary exposes one gated metric per sweep step.
        let summary = confidential_policy_summary(&report);
        assert_eq!(
            summary
                .metrics
                .iter()
                .filter(|m| m.name.ends_with("_ops_per_sec"))
                .count(),
            5
        );
        assert!(summary.metric("conf_shards_0_of_4_ops_per_sec").unwrap() > 0.0);
    }

    #[test]
    fn bench_summaries_and_perf_gate_catch_regressions() {
        let report = BatchingReport {
            rows: vec![ExperimentRow {
                protocol: "R-Raft (conf.)".into(),
                config: "batch=16".into(),
                throughput_ops: 1000.0,
                mean_latency_us: 10.0,
                speedup_vs_baseline: 2.0,
            }],
            stats: vec![RunStats::default()],
        };
        let baseline = batching_summary(&report);
        assert_eq!(baseline.metrics[0].name, "r_raft_conf_batch_16_ops_per_sec");
        // Identical run: gate passes.
        assert!(perf_gate_compare(&baseline, &baseline, 0.15).is_empty());
        // Small wobble within tolerance: passes. Improvement: passes.
        let mut wobble = baseline.clone();
        wobble.metrics[0].value = 900.0;
        assert!(perf_gate_compare(&baseline, &wobble, 0.15).is_empty());
        wobble.metrics[0].value = 2000.0;
        assert!(perf_gate_compare(&baseline, &wobble, 0.15).is_empty());
        // >15% regression: fails with a readable message.
        let mut regressed = baseline.clone();
        regressed.metrics[0].value = 800.0;
        let violations = perf_gate_compare(&baseline, &regressed, 0.15);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("regressed 20.0%"), "{violations:?}");
        // Missing metric: fails.
        let empty = BenchSummary {
            bench: "fig_batching".into(),
            metrics: vec![],
        };
        assert_eq!(perf_gate_compare(&baseline, &empty, 0.15).len(), 1);
        // Non-throughput metrics are informational, never gated.
        let info = BenchSummary {
            bench: "x".into(),
            metrics: vec![BenchMetric {
                name: "recovery_ratio".into(),
                value: 1.0,
            }],
        };
        assert!(perf_gate_compare(&info, &empty, 0.15).is_empty());
        // Summaries survive a JSON round trip (what the gate bin does).
        let json = serde_json::to_string_pretty(&baseline).unwrap();
        let back: BenchSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, baseline);
    }

    #[test]
    fn fig6b_orders_the_five_stacks_correctly() {
        let rows = fig6b_network();
        let at = |name: &str, size: usize| {
            rows.iter()
                .find(|(n, s, _)| n == name && *s == size)
                .map(|(_, _, gbps)| *gbps)
                .unwrap()
        };
        for size in [256, 1024, 4096] {
            assert!(at("direct I/O", size) > at("kernel-net", size));
            assert!(at("kernel-net", size) > at("kernel-net (TEEs)", size));
            assert!(at("Recipe-lib (net)", size) > at("kernel-net (TEEs)", size));
            assert!(at("direct I/O (TEEs)", size) >= at("Recipe-lib (net)", size));
        }
    }
}

//! Benchmark harness reproducing every table and figure of the Recipe evaluation.
//!
//! Each `figN_*` / `tableN_*` function runs the corresponding experiment on the
//! deterministic simulator and returns structured rows; the binaries under
//! `src/bin/` print them, the Criterion benches under `benches/` measure
//! representative configurations, and EXPERIMENTS.md records paper-vs-measured
//! values. See DESIGN.md for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;

use recipe_attest::{ConfigAndAttestService, IntelAttestationService, QuoteVerifier, SecretBundle};
use recipe_bft::{DamysusReplica, PbftReplica};
use recipe_core::Membership;
use recipe_net::{ExecMode, NetCostModel, Transport};
use recipe_protocols::{AbdReplica, AllConcurReplica, BatchConfig, ChainReplica, RaftReplica};
use recipe_shard::{ShardedCluster, ShardedConfig, ShardedRunStats};
use recipe_sim::{ClientModel, CostProfile, Replica, RunStats, SimCluster, SimConfig};
use recipe_workload::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// Which system a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Recipe-transformed Raft.
    RRaft,
    /// Recipe-transformed Chain Replication.
    RChain,
    /// Recipe-transformed ABD.
    RAbd,
    /// Recipe-transformed AllConcur.
    RAllConcur,
    /// Native (untransformed) Raft — Figure 6a baseline.
    NativeRaft,
    /// Native Chain Replication.
    NativeChain,
    /// Native ABD.
    NativeAbd,
    /// Native AllConcur.
    NativeAllConcur,
    /// PBFT (BFT-Smart) baseline.
    Pbft,
    /// Damysus baseline.
    Damysus,
}

impl ProtocolKind {
    /// Display name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::RRaft => "R-Raft",
            ProtocolKind::RChain => "R-CR",
            ProtocolKind::RAbd => "R-ABD",
            ProtocolKind::RAllConcur => "R-AllConcur",
            ProtocolKind::NativeRaft => "Raft (native)",
            ProtocolKind::NativeChain => "CR (native)",
            ProtocolKind::NativeAbd => "ABD (native)",
            ProtocolKind::NativeAllConcur => "AllConcur (native)",
            ProtocolKind::Pbft => "PBFT",
            ProtocolKind::Damysus => "Damysus",
        }
    }

    /// The four Recipe-transformed protocols.
    pub fn recipe_protocols() -> [ProtocolKind; 4] {
        [
            ProtocolKind::RRaft,
            ProtocolKind::RChain,
            ProtocolKind::RAllConcur,
            ProtocolKind::RAbd,
        ]
    }

    /// Matching native variant for a Recipe protocol (panics for baselines).
    pub fn native_counterpart(&self) -> ProtocolKind {
        match self {
            ProtocolKind::RRaft => ProtocolKind::NativeRaft,
            ProtocolKind::RChain => ProtocolKind::NativeChain,
            ProtocolKind::RAbd => ProtocolKind::NativeAbd,
            ProtocolKind::RAllConcur => ProtocolKind::NativeAllConcur,
            other => panic!("{other:?} has no native counterpart"),
        }
    }
}

/// One experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Read fraction of the workload.
    pub read_ratio: f64,
    /// Value size in bytes.
    pub value_size: usize,
    /// Whether Recipe runs in confidential mode.
    pub confidential: bool,
    /// Total committed operations per run.
    pub operations: usize,
    /// Closed-loop client count.
    pub clients: usize,
    /// Seed for workload and simulator.
    pub seed: u64,
    /// Leader-side batching factor (ops per wire frame; 1 = unbatched). Wired
    /// through for R-Raft, R-CR, their native counterparts and PBFT — the
    /// protocols with a batching pipeline.
    pub batch_ops: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            protocol: ProtocolKind::RRaft,
            read_ratio: 0.5,
            value_size: 256,
            confidential: false,
            operations: 1_500,
            clients: 24,
            seed: 7,
            batch_ops: 1,
        }
    }
}

/// One output row (one bar / one point of a figure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRow {
    /// Protocol name.
    pub protocol: String,
    /// Free-form configuration label (e.g. "90% R", "1024 B").
    pub config: String,
    /// Measured throughput (simulated ops/s).
    pub throughput_ops: f64,
    /// Mean latency in microseconds.
    pub mean_latency_us: f64,
    /// Speedup relative to the row's baseline (1.0 when this row *is* the baseline).
    pub speedup_vs_baseline: f64,
}

/// Runs one experiment configuration and returns the raw simulator statistics.
pub fn run_protocol(config: &ExperimentConfig) -> RunStats {
    let operations = config.operations;
    let clients = config.clients;
    let workload = WorkloadSpec {
        read_ratio: config.read_ratio,
        value_size: config.value_size,
        seed: config.seed,
        ..WorkloadSpec::default()
    };

    // The cost profile is the source of truth for the batching factor: the
    // replicas' flush triggers are derived from `profile.batch_ops`, so the
    // Batcher and the cost-model bookkeeping can never disagree.
    let recipe = recipe_profile(config);
    let native = CostProfile::native_cft().with_batch_ops(config.batch_ops);
    let pbft = CostProfile::pbft_baseline().with_batch_ops(config.batch_ops);
    let batch = BatchConfig::of_ops(recipe.batch_ops);
    match config.protocol {
        ProtocolKind::RRaft => run_cluster(
            build(3, |id, m| {
                RaftReplica::recipe(id, m, config.confidential).with_batching(batch)
            }),
            recipe,
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::NativeRaft => run_cluster(
            build(3, |id, m| RaftReplica::native(id, m).with_batching(batch)),
            native,
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::RChain => run_cluster(
            build(3, |id, m| {
                ChainReplica::recipe(id, m, config.confidential).with_batching(batch)
            }),
            recipe,
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::NativeChain => run_cluster(
            build(3, |id, m| ChainReplica::native(id, m).with_batching(batch)),
            native,
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::RAbd => run_cluster(
            build(3, |id, m| AbdReplica::recipe(id, m, config.confidential)),
            recipe_profile(config),
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::NativeAbd => run_cluster(
            build(3, AbdReplica::native),
            CostProfile::native_cft(),
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::RAllConcur => run_cluster(
            build(3, |id, m| {
                AllConcurReplica::recipe(id, m, config.confidential)
            }),
            recipe_profile(config),
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::NativeAllConcur => run_cluster(
            build(3, AllConcurReplica::native),
            CostProfile::native_cft(),
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::Pbft => run_cluster(
            {
                // PBFT needs 3f + 1 replicas for the same f = 1.
                let membership = Membership::of_size(4, 1);
                (0..4)
                    .map(|id| PbftReplica::new(id, membership.clone()).with_batching(batch))
                    .collect()
            },
            pbft,
            workload,
            operations,
            clients,
            config.seed,
        ),
        ProtocolKind::Damysus => run_cluster(
            {
                let membership = Membership::of_size(3, 1);
                (0..3)
                    .map(|id| DamysusReplica::new(id, membership.clone()))
                    .collect()
            },
            CostProfile::damysus_baseline(),
            workload,
            operations,
            clients,
            config.seed,
        ),
    }
}

fn recipe_profile(config: &ExperimentConfig) -> CostProfile {
    let profile = CostProfile::recipe().with_batch_ops(config.batch_ops);
    if config.confidential {
        profile.confidential()
    } else {
        profile
    }
}

fn build<R>(n: usize, make: impl Fn(u64, Membership) -> R) -> Vec<R> {
    recipe_protocols::build_cluster(n, (n - 1) / 2, make)
}

fn run_cluster<R: Replica>(
    replicas: Vec<R>,
    profile: CostProfile,
    workload: WorkloadSpec,
    operations: usize,
    clients: usize,
    seed: u64,
) -> RunStats {
    let n = replicas.len();
    let mut sim_config = SimConfig::uniform(n, profile);
    sim_config.seed = seed;
    sim_config.clients = ClientModel {
        clients,
        total_operations: operations,
    };
    let mut cluster = SimCluster::new(replicas, sim_config);
    let generator = RefCell::new(workload.generator());
    cluster
        .run(move |_client, _seq| recipe_shard::op_from_workload(generator.borrow_mut().next_op()))
}

// ---------------------------------------------------------------------------
// Figures and tables
// ---------------------------------------------------------------------------

/// Figure 4: throughput and speedup of the four R-protocols vs PBFT across
/// read/write ratios (256 B values).
pub fn fig4_rw_ratio(operations: usize) -> Vec<ExperimentRow> {
    let ratios = [0.5, 0.75, 0.9, 0.95, 0.99];
    let mut rows = Vec::new();
    for &ratio in &ratios {
        let label = format!("{:.0}% R", ratio * 100.0);
        let pbft = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::Pbft,
            read_ratio: ratio,
            operations,
            ..ExperimentConfig::default()
        });
        rows.push(ExperimentRow {
            protocol: "PBFT".into(),
            config: label.clone(),
            throughput_ops: pbft.throughput_ops,
            mean_latency_us: pbft.mean_latency_us,
            speedup_vs_baseline: 1.0,
        });
        for kind in ProtocolKind::recipe_protocols() {
            let stats = run_protocol(&ExperimentConfig {
                protocol: kind,
                read_ratio: ratio,
                operations,
                ..ExperimentConfig::default()
            });
            rows.push(ExperimentRow {
                protocol: kind.name().into(),
                config: label.clone(),
                throughput_ops: stats.throughput_ops,
                mean_latency_us: stats.mean_latency_us,
                speedup_vs_baseline: stats.throughput_ops / pbft.throughput_ops,
            });
        }
    }
    rows
}

/// Figure 3: throughput for different value sizes (256 B / 1024 B / 4096 B) under a
/// 90 % read workload.
pub fn fig3_value_size(operations: usize) -> Vec<ExperimentRow> {
    let sizes = [256usize, 1024, 4096];
    let mut rows = Vec::new();
    for &size in &sizes {
        let label = format!("{size} B");
        let pbft = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::Pbft,
            read_ratio: 0.9,
            value_size: size,
            operations,
            ..ExperimentConfig::default()
        });
        rows.push(ExperimentRow {
            protocol: "PBFT".into(),
            config: label.clone(),
            throughput_ops: pbft.throughput_ops,
            mean_latency_us: pbft.mean_latency_us,
            speedup_vs_baseline: 1.0,
        });
        for kind in ProtocolKind::recipe_protocols() {
            let stats = run_protocol(&ExperimentConfig {
                protocol: kind,
                read_ratio: 0.9,
                value_size: size,
                operations,
                ..ExperimentConfig::default()
            });
            rows.push(ExperimentRow {
                protocol: kind.name().into(),
                config: label.clone(),
                throughput_ops: stats.throughput_ops,
                mean_latency_us: stats.mean_latency_us,
                speedup_vs_baseline: stats.throughput_ops / pbft.throughput_ops,
            });
        }
    }
    rows
}

/// Figure 5: throughput with confidentiality (encrypted values and payloads) vs
/// PBFT, for 50 % and 95 % read workloads.
pub fn fig5_confidentiality(operations: usize) -> Vec<ExperimentRow> {
    let ratios = [0.5, 0.95];
    let mut rows = Vec::new();
    for &ratio in &ratios {
        let label = format!("{:.0}% R (conf.)", ratio * 100.0);
        let pbft = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::Pbft,
            read_ratio: ratio,
            operations,
            ..ExperimentConfig::default()
        });
        rows.push(ExperimentRow {
            protocol: "PBFT".into(),
            config: label.clone(),
            throughput_ops: pbft.throughput_ops,
            mean_latency_us: pbft.mean_latency_us,
            speedup_vs_baseline: 1.0,
        });
        for kind in ProtocolKind::recipe_protocols() {
            let stats = run_protocol(&ExperimentConfig {
                protocol: kind,
                read_ratio: ratio,
                confidential: true,
                operations,
                ..ExperimentConfig::default()
            });
            rows.push(ExperimentRow {
                protocol: format!("{} (conf.)", kind.name()),
                config: label.clone(),
                throughput_ops: stats.throughput_ops,
                mean_latency_us: stats.mean_latency_us,
                speedup_vs_baseline: stats.throughput_ops / pbft.throughput_ops,
            });
        }
    }
    rows
}

/// Figure 6a: overhead of the transformation + TEEs — native protocol throughput
/// divided by the R-protocol throughput, across read/write ratios.
pub fn fig6a_tee_overheads(operations: usize) -> Vec<ExperimentRow> {
    let ratios = [0.5, 0.75, 0.9, 0.95, 0.99];
    let mut rows = Vec::new();
    for &ratio in &ratios {
        let label = format!("{:.0}% R", ratio * 100.0);
        for kind in ProtocolKind::recipe_protocols() {
            let recipe = run_protocol(&ExperimentConfig {
                protocol: kind,
                read_ratio: ratio,
                operations,
                ..ExperimentConfig::default()
            });
            let native = run_protocol(&ExperimentConfig {
                protocol: kind.native_counterpart(),
                read_ratio: ratio,
                operations,
                ..ExperimentConfig::default()
            });
            rows.push(ExperimentRow {
                protocol: kind.name().into(),
                config: label.clone(),
                throughput_ops: recipe.throughput_ops,
                mean_latency_us: recipe.mean_latency_us,
                // For this figure "speedup" is the overhead factor (native / recipe).
                speedup_vs_baseline: native.throughput_ops / recipe.throughput_ops,
            });
        }
    }
    rows
}

/// Figure 6b: network-stack goodput (Gb/s) vs payload size for the five stacks.
pub fn fig6b_network() -> Vec<(String, usize, f64)> {
    let model = NetCostModel::default();
    let sizes = [64usize, 256, 1024, 1460, 2048, 4096];
    let mut rows = Vec::new();
    for &size in &sizes {
        rows.push((
            "kernel-net".to_string(),
            size,
            model.throughput_gbps(Transport::KernelSockets, ExecMode::Native, size),
        ));
        rows.push((
            "direct I/O".to_string(),
            size,
            model.throughput_gbps(Transport::DirectIo, ExecMode::Native, size),
        ));
        rows.push((
            "kernel-net (TEEs)".to_string(),
            size,
            model.throughput_gbps(Transport::KernelSockets, ExecMode::Tee, size),
        ));
        rows.push((
            "direct I/O (TEEs)".to_string(),
            size,
            model.throughput_gbps(Transport::DirectIo, ExecMode::Tee, size),
        ));
        rows.push((
            "Recipe-lib (net)".to_string(),
            size,
            model.recipe_lib_throughput_gbps(size),
        ));
    }
    rows
}

/// The Damysus comparison of §B.3: Recipe protocols (256 B payload) vs Damysus at
/// 0 B / 64 B / 256 B payloads.
pub fn damysus_compare(operations: usize) -> Vec<ExperimentRow> {
    let mut rows = Vec::new();
    for &size in &[1usize, 64, 256] {
        let damysus = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::Damysus,
            read_ratio: 0.5,
            value_size: size,
            operations,
            ..ExperimentConfig::default()
        });
        rows.push(ExperimentRow {
            protocol: "Damysus".into(),
            config: format!("{size} B"),
            throughput_ops: damysus.throughput_ops,
            mean_latency_us: damysus.mean_latency_us,
            speedup_vs_baseline: 1.0,
        });
    }
    // Recipe protocols with their standard 256 B payload.
    let damysus_256 = run_protocol(&ExperimentConfig {
        protocol: ProtocolKind::Damysus,
        read_ratio: 0.5,
        value_size: 256,
        operations,
        ..ExperimentConfig::default()
    });
    for kind in ProtocolKind::recipe_protocols() {
        let stats = run_protocol(&ExperimentConfig {
            protocol: kind,
            read_ratio: 0.5,
            value_size: 256,
            operations,
            ..ExperimentConfig::default()
        });
        rows.push(ExperimentRow {
            protocol: kind.name().into(),
            config: "256 B".into(),
            throughput_ops: stats.throughput_ops,
            mean_latency_us: stats.mean_latency_us,
            speedup_vs_baseline: stats.throughput_ops / damysus_256.throughput_ops,
        });
    }
    rows
}

/// Batching experiment (beyond the paper): per-leader committed-ops/sec of a
/// single 3-replica group under a write-only workload, sweeping the batch size
/// {1, 4, 16, 64} for the native Raft baseline and confidential R-Raft.
///
/// Every commit flows through the one leader, so throughput *is* per-leader
/// throughput. The `batch=1` row of each protocol is the baseline its speedups
/// are measured against; the confidential rows demonstrate how amortizing the
/// `shield_msg`/`verify_msg` fixed costs (counter, MAC/AEAD setup, framing —
/// the fig6a overhead factors) over a frame recovers most of the
/// confidential-mode tax.
pub fn fig_batching(operations: usize) -> Vec<ExperimentRow> {
    let batch_sizes = [1usize, 4, 16, 64];
    let mut rows = Vec::new();
    for (protocol, confidential, label) in [
        (ProtocolKind::NativeRaft, false, "Raft (native)"),
        (ProtocolKind::RRaft, true, "R-Raft (conf.)"),
    ] {
        let mut baseline = None;
        for &batch in &batch_sizes {
            let stats = run_protocol(&ExperimentConfig {
                protocol,
                confidential,
                read_ratio: 0.0,
                value_size: 64,
                clients: 96,
                operations,
                batch_ops: batch,
                ..ExperimentConfig::default()
            });
            let base = *baseline.get_or_insert(stats.throughput_ops);
            rows.push(ExperimentRow {
                protocol: label.into(),
                config: format!("batch={batch}"),
                throughput_ops: stats.throughput_ops,
                mean_latency_us: stats.mean_latency_us,
                speedup_vs_baseline: stats.throughput_ops / base,
            });
        }
    }
    rows
}

/// Shard-scaling experiment (beyond the paper): aggregate throughput of
/// R-Raft and R-ABD across 1/2/4/8 consistent-hash shards under the default
/// YCSB Zipfian workload. Each shard is an independent 3-replica group; the
/// single-shard rows are the baselines their speedups are measured against.
pub fn fig_shard_scaling(operations: usize) -> Vec<ExperimentRow> {
    let shard_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    for kind in [ProtocolKind::RRaft, ProtocolKind::RAbd] {
        let mut baseline = None;
        for &shards in &shard_counts {
            let stats = run_sharded(kind, shards, operations);
            let base = *baseline.get_or_insert(stats.total.throughput_ops);
            rows.push(ExperimentRow {
                protocol: kind.name().into(),
                config: format!("{shards} shard{}", if shards == 1 { "" } else { "s" }),
                throughput_ops: stats.total.throughput_ops,
                mean_latency_us: stats.total.mean_latency_us,
                speedup_vs_baseline: stats.total.throughput_ops / base,
            });
        }
    }
    rows
}

/// Runs one sharded configuration: `shards` groups of 3 replicas, a global
/// closed-loop client population and the default YCSB Zipfian workload.
pub fn run_sharded(kind: ProtocolKind, shards: usize, operations: usize) -> ShardedRunStats {
    let mut config = ShardedConfig::uniform(shards, 3, CostProfile::recipe());
    config.base.seed = 7;
    config.base.clients = ClientModel {
        // Enough concurrency that a single leader saturates; fixed across
        // shard counts so the sweep measures service capacity, not load.
        clients: 64,
        total_operations: operations,
    };
    let workload = WorkloadSpec {
        seed: 7,
        ..WorkloadSpec::default()
    };
    let groups = match kind {
        ProtocolKind::RRaft => recipe_protocols::build_sharded_cluster(shards, 3, 1, |_, id, m| {
            ShardReplica::Raft(RaftReplica::recipe(id, m, false))
        }),
        ProtocolKind::RAbd => recipe_protocols::build_sharded_cluster(shards, 3, 1, |_, id, m| {
            ShardReplica::Abd(AbdReplica::recipe(id, m, false))
        }),
        other => panic!("shard scaling is defined for R-Raft and R-ABD, not {other:?}"),
    };
    let mut cluster = ShardedCluster::new(groups, config);
    let generator = RefCell::new(workload.generator());
    cluster
        .run(move |_client, _seq| recipe_shard::op_from_workload(generator.borrow_mut().next_op()))
}

/// A replica that is either R-Raft or R-ABD, so one sharded driver type can
/// host both sweep protocols.
// One replica of each variant exists per shard — the size difference between
// the two is irrelevant at that population.
#[allow(clippy::large_enum_variant)]
pub enum ShardReplica {
    /// Recipe-transformed Raft.
    Raft(RaftReplica),
    /// Recipe-transformed ABD.
    Abd(AbdReplica),
}

impl Replica for ShardReplica {
    fn id(&self) -> recipe_net::NodeId {
        match self {
            ShardReplica::Raft(r) => r.id(),
            ShardReplica::Abd(r) => r.id(),
        }
    }

    fn on_client_request(
        &mut self,
        request: recipe_core::ClientRequest,
        ctx: &mut recipe_sim::Ctx,
    ) {
        match self {
            ShardReplica::Raft(r) => r.on_client_request(request, ctx),
            ShardReplica::Abd(r) => r.on_client_request(request, ctx),
        }
    }

    fn on_message(&mut self, from: recipe_net::NodeId, bytes: &[u8], ctx: &mut recipe_sim::Ctx) {
        match self {
            ShardReplica::Raft(r) => r.on_message(from, bytes, ctx),
            ShardReplica::Abd(r) => r.on_message(from, bytes, ctx),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut recipe_sim::Ctx) {
        match self {
            ShardReplica::Raft(r) => r.on_timer(token, ctx),
            ShardReplica::Abd(r) => r.on_timer(token, ctx),
        }
    }

    fn coordinates_writes(&self) -> bool {
        match self {
            ShardReplica::Raft(r) => r.coordinates_writes(),
            ShardReplica::Abd(r) => r.coordinates_writes(),
        }
    }

    fn coordinates_reads(&self) -> bool {
        match self {
            ShardReplica::Raft(r) => r.coordinates_reads(),
            ShardReplica::Abd(r) => r.coordinates_reads(),
        }
    }

    fn protocol_name(&self) -> &'static str {
        match self {
            ShardReplica::Raft(r) => r.protocol_name(),
            ShardReplica::Abd(r) => r.protocol_name(),
        }
    }
}

/// Table 4: end-to-end attestation latency through the Recipe CAS vs through the
/// vendor IAS, averaged over `rounds` attestations each.
pub fn table4_attestation(rounds: usize) -> Vec<(String, f64, f64)> {
    use recipe_tee::{EnclaveConfig, EnclaveId};

    fn run_path<V: QuoteVerifier>(verifier: &mut V, rounds: usize) -> f64 {
        use rand::SeedableRng;
        use recipe_tee::{Enclave, EnclaveConfig, EnclaveId};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut total_ns = 0u64;
        for i in 0..rounds {
            let mut enclave = Enclave::launch(
                EnclaveId(i as u64),
                EnclaveConfig::new("recipe-replica-v1", 1),
            );
            let bundle = SecretBundle {
                node_id: i as u64,
                signing_seed: vec![7u8; 32],
                channel_keys: Default::default(),
                cipher_key: None,
                config: recipe_attest::ClusterConfig::for_replicas(3, 1, "recipe-replica-v1"),
            };
            let outcome =
                recipe_attest::run_remote_attestation(verifier, &mut enclave, &bundle, &mut rng)
                    .expect("attestation succeeds");
            total_ns += outcome.latency_ns;
        }
        total_ns as f64 / rounds as f64 / 1e9
    }

    // Both services must trust platform 1's vendor key.
    let vendor =
        recipe_tee::Enclave::launch(EnclaveId(1000), EnclaveConfig::new("recipe-replica-v1", 1))
            .platform_vendor_key();
    let mut cas = ConfigAndAttestService::new(vec![(1, vendor)], 5);
    let mut ias = IntelAttestationService::new(vec![(1, vendor)], 5);
    let cas_mean = run_path(&mut cas, rounds);
    let ias_mean = run_path(&mut ias, rounds);
    vec![
        ("Recipe CAS".to_string(), cas_mean, ias_mean / cas_mean),
        ("IAS".to_string(), ias_mean, 1.0),
    ]
}

/// Pretty-prints experiment rows as an aligned text table.
pub fn print_rows(title: &str, rows: &[ExperimentRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<22} {:>12} {:>16} {:>14} {:>10}",
        "protocol", "config", "throughput(op/s)", "latency(us)", "speedup"
    );
    for row in rows {
        println!(
            "{:<22} {:>12} {:>16.0} {:>14.1} {:>9.2}x",
            row.protocol,
            row.config,
            row.throughput_ops,
            row.mean_latency_us,
            row.speedup_vs_baseline
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPS: usize = 400;

    #[test]
    fn recipe_protocols_beat_pbft_on_a_mixed_workload() {
        let pbft = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::Pbft,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        for kind in ProtocolKind::recipe_protocols() {
            let stats = run_protocol(&ExperimentConfig {
                protocol: kind,
                operations: OPS,
                ..ExperimentConfig::default()
            });
            let speedup = stats.throughput_ops / pbft.throughput_ops;
            assert!(
                speedup > 2.0,
                "{} only {speedup:.2}x faster than PBFT",
                kind.name()
            );
        }
    }

    #[test]
    fn confidentiality_costs_throughput_but_still_beats_pbft() {
        let plain = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::RChain,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        let confidential = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::RChain,
            confidential: true,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        let pbft = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::Pbft,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        assert!(confidential.throughput_ops <= plain.throughput_ops);
        assert!(confidential.throughput_ops > pbft.throughput_ops);
    }

    #[test]
    fn native_protocols_are_faster_than_their_recipe_versions() {
        let recipe = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::RRaft,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        let native = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::NativeRaft,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        let overhead = native.throughput_ops / recipe.throughput_ops;
        assert!(
            (1.2..=20.0).contains(&overhead),
            "overhead factor was {overhead:.2}"
        );
    }

    #[test]
    fn value_size_degrades_recipe_throughput() {
        let small = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::RRaft,
            read_ratio: 0.9,
            value_size: 256,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        let large = run_protocol(&ExperimentConfig {
            protocol: ProtocolKind::RRaft,
            read_ratio: 0.9,
            value_size: 4096,
            operations: OPS,
            ..ExperimentConfig::default()
        });
        assert!(large.throughput_ops < small.throughput_ops);
    }

    #[test]
    fn table4_shows_the_cas_latency_advantage() {
        let rows = table4_attestation(20);
        let cas = &rows[0];
        let ias = &rows[1];
        assert!(cas.1 < ias.1);
        assert!(
            (10.0..=30.0).contains(&cas.2),
            "CAS speedup was {:.1}x",
            cas.2
        );
    }

    #[test]
    fn shard_scaling_doubles_r_raft_throughput_at_four_shards() {
        let rows = fig_shard_scaling(600);
        let speedup_of = |protocol: &str, config: &str| {
            rows.iter()
                .find(|r| r.protocol == protocol && r.config == config)
                .map(|r| r.speedup_vs_baseline)
                .unwrap()
        };
        assert_eq!(speedup_of("R-Raft", "1 shard"), 1.0);
        assert!(
            speedup_of("R-Raft", "4 shards") >= 2.0,
            "R-Raft 4-shard speedup {:.2}",
            speedup_of("R-Raft", "4 shards")
        );
        assert!(
            speedup_of("R-ABD", "4 shards") >= 2.0,
            "R-ABD 4-shard speedup {:.2}",
            speedup_of("R-ABD", "4 shards")
        );
        // More shards never hurt aggregate throughput in this sweep.
        for protocol in ["R-Raft", "R-ABD"] {
            assert!(speedup_of(protocol, "8 shards") > speedup_of(protocol, "4 shards"));
        }
    }

    #[test]
    fn batching_recovers_the_confidential_mode_tax() {
        let rows = fig_batching(400);
        let speedup_of = |protocol: &str, config: &str| {
            rows.iter()
                .find(|r| r.protocol == protocol && r.config == config)
                .map(|r| r.speedup_vs_baseline)
                .unwrap()
        };
        // The headline acceptance number: confidential R-Raft doubles (or
        // better) its per-leader committed-ops/sec at batch=16.
        assert_eq!(speedup_of("R-Raft (conf.)", "batch=1"), 1.0);
        let conf_16 = speedup_of("R-Raft (conf.)", "batch=16");
        assert!(conf_16 >= 2.0, "confidential batch=16 speedup {conf_16:.2}");
        // Bigger batches never hurt in this sweep, and the native baseline
        // gains too (less, since it never paid the shield overhead).
        assert!(speedup_of("R-Raft (conf.)", "batch=64") >= conf_16 * 0.9);
        let native_16 = speedup_of("Raft (native)", "batch=16");
        assert!(native_16 > 1.0, "native batch=16 speedup {native_16:.2}");
        assert!(native_16 < conf_16);
    }

    #[test]
    fn fig6b_orders_the_five_stacks_correctly() {
        let rows = fig6b_network();
        let at = |name: &str, size: usize| {
            rows.iter()
                .find(|(n, s, _)| n == name && *s == size)
                .map(|(_, _, gbps)| *gbps)
                .unwrap()
        };
        for size in [256, 1024, 4096] {
            assert!(at("direct I/O", size) > at("kernel-net", size));
            assert!(at("kernel-net", size) > at("kernel-net (TEEs)", size));
            assert!(at("Recipe-lib (net)", size) > at("kernel-net (TEEs)", size));
            assert!(at("direct I/O (TEEs)", size) >= at("Recipe-lib (net)", size));
        }
    }
}

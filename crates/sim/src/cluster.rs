//! The discrete-event cluster: replicas, clients, the Byzantine network and the
//! virtual clock.
//!
//! [`SimCluster::run`] drives a closed-loop client population against the replicas
//! until the configured number of operations has committed (or the virtual-time /
//! event budget is exhausted) and returns a [`RunStats`] with throughput and latency
//! figures. All scheduling decisions are deterministic for a given seed.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::SeedableRng;
use recipe_core::{ClientReply, ClientRequest, Operation};
use recipe_net::{
    CrashPlan, FaultDecision, FaultPlan, MsgBuf, NetworkFaultInjector, NodeId, ReqType, WireMessage,
};
use recipe_tee::TrustedInstant;
use recipe_telemetry::{ChargeKind, CostCategory, ShardTelemetry, SpanKind};
use serde::{Deserialize, Serialize};

use crate::cost::{CostProfile, ProtocolCostModel};
use crate::replica::{Ctx, RangeEntry, Replica};

/// Closed-loop client population configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientModel {
    /// Number of concurrent closed-loop clients.
    pub clients: usize,
    /// Total operations to commit before the run ends.
    pub total_operations: usize,
}

impl Default for ClientModel {
    fn default() -> Self {
        ClientModel {
            clients: 32,
            total_operations: 2_000,
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed (fault injection, routing tie-breaks).
    pub seed: u64,
    /// The cost model shared by all nodes.
    pub cost_model: ProtocolCostModel,
    /// Per-node execution profiles, indexed by node id order of the replicas passed
    /// to [`SimCluster::new`].
    pub profiles: Vec<CostProfile>,
    /// Network adversary plan.
    pub fault_plan: FaultPlan,
    /// Client population.
    pub clients: ClientModel,
    /// Hard cap on virtual time (nanoseconds) as a safety net.
    pub max_virtual_ns: u64,
    /// Client-side retransmission timeout (nanoseconds): an outstanding request is
    /// re-sent (possibly to a different coordinator) after this long without a
    /// reply, which is how clients survive coordinator crashes.
    pub retry_timeout_ns: u64,
    /// Deterministic crash schedule: nodes crash at `crash_at_ns` and (when
    /// `recover_at_ns` is set) restart rollback-protected at `recover_at_ns`.
    /// An empty plan schedules nothing — crash-free runs are bit-identical to
    /// builds without the recovery plane.
    pub crash_plan: CrashPlan,
    /// How long after a crash (or recovery) the trusted configuration service
    /// notifies the surviving replicas via [`Replica::on_peer_down`] /
    /// [`Replica::on_peer_up`]. Only consumed when a crash actually happens.
    pub failure_detection_delay_ns: u64,
}

impl SimConfig {
    /// A benign-network configuration where every node uses `profile`.
    pub fn uniform(n: usize, profile: CostProfile) -> Self {
        SimConfig {
            seed: 42,
            cost_model: ProtocolCostModel::default(),
            profiles: vec![profile; n],
            fault_plan: FaultPlan::benign(),
            clients: ClientModel::default(),
            max_virtual_ns: 120 * 1_000_000_000,
            retry_timeout_ns: 100_000_000,
            crash_plan: CrashPlan::none(),
            failure_detection_delay_ns: 15_000_000,
        }
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RunStats {
    /// Operations whose replies reached clients.
    pub committed: u64,
    /// Committed reads.
    pub committed_reads: u64,
    /// Committed writes.
    pub committed_writes: u64,
    /// Virtual time elapsed, seconds.
    pub elapsed_secs: f64,
    /// Throughput in operations per (virtual) second.
    pub throughput_ops: f64,
    /// Mean request latency in microseconds.
    pub mean_latency_us: f64,
    /// Median request latency in microseconds.
    pub p50_latency_us: f64,
    /// 90th percentile request latency in microseconds.
    pub p90_latency_us: f64,
    /// 99th percentile request latency in microseconds.
    pub p99_latency_us: f64,
    /// 99.9th percentile request latency in microseconds.
    pub p999_latency_us: f64,
    /// Messages delivered between replicas.
    pub messages_delivered: u64,
    /// Messages dropped / suppressed by the network adversary.
    pub messages_dropped: u64,
    /// Messages the adversary tampered with.
    pub messages_tampered: u64,
    /// Messages the adversary replayed or duplicated.
    pub messages_replayed: u64,
    /// Total protocol ops carried by delivered frames (equals
    /// `messages_delivered` without batching; larger when leaders batch).
    pub ops_delivered: u64,
    /// Multi-key transactions that committed atomically (their constituent
    /// operations are already classified into `committed` /
    /// `committed_reads` / `committed_writes`; this counts whole
    /// transactions). Only the sharded request driver produces these.
    pub committed_txns: u64,
    /// Transaction attempts that aborted (lock conflict) and were retried by
    /// their client. Aborted attempts contribute nothing to `committed`.
    pub aborted_txns: u64,
}

#[derive(Debug)]
enum EventKind {
    ClientIssue {
        client_id: u64,
    },
    ClientRetry {
        client_id: u64,
        request_id: u64,
    },
    ClientDeliver {
        node: NodeId,
        request: ClientRequest,
    },
    Deliver {
        from: NodeId,
        to: NodeId,
        bytes: Vec<u8>,
        /// Number of protocol ops in the frame (1 for single messages).
        ops: u32,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    Crash {
        node: NodeId,
    },
    Recover {
        node: NodeId,
    },
    /// The trusted configuration service tells `node` that `about` went down
    /// (`up: false`) or was re-attested and rejoined (`up: true`).
    PeerNotice {
        node: NodeId,
        about: NodeId,
        up: bool,
    },
}

/// What [`SimCluster::step`] did with the next event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The event queue is empty; nothing more will happen.
    Idle,
    /// The next event lies beyond the virtual-time cap and was discarded.
    CapReached,
    /// One event was processed.
    Processed,
    /// A closed-loop client is ready to issue its next operation. The caller
    /// (the internal [`SimCluster::run`] loop, which owns the workload closure)
    /// generates the operation and submits it. Never returned in external-client
    /// mode — there the driver owns issuance entirely.
    NeedsIssue {
        /// The client that should issue next.
        client_id: u64,
    },
}

/// A request that completed, surfaced to an external client driver
/// (see [`SimCluster::set_external_clients`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The issuing client.
    pub client_id: u64,
    /// The completed request.
    pub request_id: u64,
    /// Issue-to-reply latency in virtual nanoseconds.
    pub latency_ns: u64,
    /// Whether the completed operation was a write.
    pub was_write: bool,
    /// Virtual time at which the reply reached the client.
    pub at_ns: u64,
}

/// Bookkeeping for a client's single outstanding request. Tracking the issued
/// operation itself (rather than re-deriving it) lets retries resend the exact
/// same operation and lets [`SimCluster::record_reply`] classify commits by the
/// *request* type instead of guessing from reply fields.
#[derive(Debug, Clone)]
struct Outstanding {
    request_id: u64,
    issued_ns: u64,
    operation: Operation,
    is_write: bool,
}

struct Event {
    at: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The discrete-event cluster simulator.
pub struct SimCluster<R: Replica> {
    replicas: Vec<R>,
    config: SimConfig,
    injector: NetworkFaultInjector,
    queue: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    now: u64,
    busy_until: Vec<u64>,
    crashed: BTreeSet<NodeId>,
    /// Pending client bookkeeping: the outstanding request per client.
    issue_time: HashMap<u64, Outstanding>,
    next_request_id: HashMap<u64, u64>,
    latencies_ns: Vec<u64>,
    stats: RunStats,
    write_rr: usize,
    read_rr: usize,
    /// When true, the closed-loop client population lives *outside* this
    /// cluster (e.g. in a `recipe_shard::ShardedCluster` routing one client
    /// population over many groups): no `ClientIssue` events are scheduled and
    /// completed requests are queued for [`SimCluster::drain_completions`].
    external_clients: bool,
    completions: Vec<Completion>,
    /// Attached telemetry, `None` (the default) disables every telemetry
    /// branch on the hot paths — runs are bit-identical to a build without it.
    telemetry: Option<ShardTelemetry>,
    #[allow(dead_code)]
    rng: StdRng,
}

impl<R: Replica> SimCluster<R> {
    /// Creates a cluster over `replicas` (node ids must match their position-order
    /// ids used in `config.profiles`).
    pub fn new(replicas: Vec<R>, config: SimConfig) -> Self {
        assert_eq!(
            replicas.len(),
            config.profiles.len(),
            "one cost profile per replica"
        );
        let n = replicas.len();
        let injector = NetworkFaultInjector::new(config.fault_plan, config.seed);
        SimCluster {
            replicas,
            injector,
            queue: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
            busy_until: vec![0; n],
            crashed: BTreeSet::new(),
            issue_time: HashMap::new(),
            next_request_id: HashMap::new(),
            latencies_ns: Vec::new(),
            stats: RunStats::default(),
            write_rr: 0,
            read_rr: 0,
            external_clients: false,
            completions: Vec::new(),
            telemetry: None,
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// Attaches per-shard telemetry (span tracer, cost attribution, latency
    /// histogram). Telemetry only observes: with or without it, the same
    /// events run at the same virtual times.
    pub fn set_telemetry(&mut self, telemetry: ShardTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry, if any (drivers charge out-of-band work here).
    pub fn telemetry_mut(&mut self) -> Option<&mut ShardTelemetry> {
        self.telemetry.as_mut()
    }

    /// Detaches and returns the telemetry for export.
    pub fn take_telemetry(&mut self) -> Option<ShardTelemetry> {
        self.telemetry.take()
    }

    /// Number of replicas (telemetry reconciles busy time against
    /// `replicas × elapsed`).
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Folds every replica's shield/batcher counters into the attached
    /// telemetry (call once, at the end of a run).
    pub fn scrape_protocol_counters(&mut self) {
        if let Some(t) = self.telemetry.as_mut() {
            for replica in &self.replicas {
                if let Some(counters) = replica.protocol_counters() {
                    t.absorb_protocol_counters(&counters);
                }
            }
        }
    }

    /// Switches the cluster into external-client mode: the caller owns the
    /// closed loop, issuing operations with [`SimCluster::submit_at`] and
    /// collecting results with [`SimCluster::drain_completions`]. Must be set
    /// before any event is processed.
    pub fn set_external_clients(&mut self, external: bool) {
        self.external_clients = external;
    }

    /// Virtual time of the next pending event, if any.
    pub fn peek_next_at(&self) -> Option<u64> {
        self.queue.peek().map(|Reverse(event)| event.at)
    }

    /// Operations committed so far.
    pub fn committed(&self) -> u64 {
        self.stats.committed
    }

    /// Takes the completions recorded since the last drain (external-client
    /// mode only; empty otherwise).
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Schedules a crash of `node` at virtual time `at_ns`.
    pub fn crash_at(&mut self, node: NodeId, at_ns: u64) {
        self.push(at_ns, EventKind::Crash { node });
    }

    /// Schedules a rollback-protected restart of `node` at virtual time
    /// `at_ns`. On recovery the node is re-attested: its shield channels are
    /// resynced against every live peer's trusted send counter (stale
    /// in-flight frames reject as replays), it adopts the highest view any
    /// live peer runs, and [`Replica::on_restart`] rehydrates only state the
    /// enclave can verify — the re-verification work is charged on the
    /// node's virtual-clock compute. A no-op if the node is not crashed when
    /// the event fires.
    pub fn recover_at(&mut self, node: NodeId, at_ns: u64) {
        self.push(at_ns, EventKind::Recover { node });
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now
    }

    /// Immutable access to a replica (for post-run assertions).
    pub fn replica(&self, node: NodeId) -> &R {
        &self.replicas[self.index_of(node)]
    }

    /// Mutable access to a replica (for test setup).
    pub fn replica_mut(&mut self, node: NodeId) -> &mut R {
        let idx = self.index_of(node);
        &mut self.replicas[idx]
    }

    /// Nodes currently crashed.
    pub fn crashed_nodes(&self) -> &BTreeSet<NodeId> {
        &self.crashed
    }

    /// The ids of all replicas, in construction order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.replicas.iter().map(|r| r.id()).collect()
    }

    /// The first live replica that coordinates writes, if any (construction
    /// order — deterministic). External controllers (e.g. the shard-migration
    /// driver) use this to find the group's leader for state export.
    pub fn write_coordinator(&self) -> Option<NodeId> {
        self.replicas
            .iter()
            .filter(|r| !self.crashed.contains(&r.id()))
            .find(|r| r.coordinates_writes())
            .map(|r| r.id())
    }

    /// Charges `cost_ns` of externally-imposed work to `node`, starting no
    /// earlier than `at_ns`: the node's work queue is serialized, so the charge
    /// delays every subsequent event the node processes. Returns the virtual
    /// time at which the charged work finishes. This is how out-of-band work —
    /// a migration snapshot export, a state-transfer import — competes for the
    /// same compute the protocol runs on.
    pub fn charge_work_at(&mut self, node: NodeId, at_ns: u64, cost_ns: u64) -> u64 {
        let idx = self.index_of(node);
        let start = at_ns.max(self.busy_until[idx]);
        let finish = start + cost_ns;
        self.busy_until[idx] = finish;
        finish
    }

    fn index_of(&self, node: NodeId) -> usize {
        self.replicas
            .iter()
            .position(|r| r.id() == node)
            // recipe-lint: allow(unwrap-in-lib, reason = "callers pass node ids obtained from this cluster")
            .expect("node is part of the cluster")
    }

    fn push(&mut self, at: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Event { at, seq, kind }));
    }

    /// Runs the simulation, generating operations with `workload(client_id, seq)`.
    ///
    /// The run ends when `clients.total_operations` operations have committed, the
    /// event queue drains, or the virtual-time cap is hit.
    pub fn run<W>(&mut self, mut workload: W) -> RunStats
    where
        W: FnMut(u64, u64) -> Operation,
    {
        self.seed_initial_events();
        // Start the closed-loop clients with a small deterministic stagger.
        for client in 0..self.config.clients.clients as u64 {
            self.push(client * 200, EventKind::ClientIssue { client_id: client });
        }

        let target = self.config.clients.total_operations as u64;
        loop {
            if self.stats.committed >= target {
                break;
            }
            match self.step() {
                StepOutcome::Idle | StepOutcome::CapReached => break,
                StepOutcome::Processed => {}
                StepOutcome::NeedsIssue { client_id } => {
                    let request_id = self.next_request_id.entry(client_id).or_insert(0);
                    *request_id += 1;
                    let rid = *request_id;
                    let operation = workload(client_id, rid);
                    if !self.submit_at(self.now, client_id, rid, operation) {
                        // No live coordinator (e.g. leader crashed and no view
                        // change yet): retry later.
                        self.push(self.now + 1_000_000, EventKind::ClientIssue { client_id });
                    }
                }
            }
        }

        self.finish()
    }

    /// Schedules the protocol kick-off timers (token 0 at time 0) and the
    /// configured crash schedule. Called once, by [`SimCluster::run`] or by an
    /// external driver before stepping.
    pub fn seed_initial_events(&mut self) {
        for idx in 0..self.replicas.len() {
            let node = self.replicas[idx].id();
            self.push(0, EventKind::Timer { node, token: 0 });
        }
        let entries = self.config.crash_plan.entries.clone();
        for entry in entries {
            self.crash_at(entry.node, entry.crash_at_ns);
            if let Some(recover_at_ns) = entry.recover_at_ns {
                self.recover_at(entry.node, recover_at_ns);
            }
        }
    }

    /// Submits a client operation at virtual time `at_ns` (which must be ≥ every
    /// already-processed event's time; external drivers guarantee this by always
    /// advancing the globally-earliest cluster). Returns false when no live
    /// coordinator exists for the operation — the caller decides when to retry.
    pub fn submit_at(
        &mut self,
        at_ns: u64,
        client_id: u64,
        request_id: u64,
        operation: Operation,
    ) -> bool {
        self.try_submit_at(at_ns, client_id, request_id, operation)
            .is_ok()
    }

    /// Like [`SimCluster::submit_at`], but hands the operation back on failure
    /// so the caller can retry the *identical* payload later without cloning
    /// every submission up front.
    pub fn try_submit_at(
        &mut self,
        at_ns: u64,
        client_id: u64,
        request_id: u64,
        operation: Operation,
    ) -> Result<(), Operation> {
        self.now = self.now.max(at_ns);
        let Some(target_node) = self.route(&operation) else {
            return Err(operation);
        };
        self.next_request_id.insert(client_id, request_id);
        self.issue_time.insert(
            client_id,
            Outstanding {
                request_id,
                issued_ns: self.now,
                is_write: operation.is_write(),
                operation: operation.clone(),
            },
        );
        let request = ClientRequest {
            client_id,
            request_id,
            operation,
            signature: None,
        };
        let deliver_at = self.now + self.config.cost_model.link_latency_ns;
        self.push(
            self.now + self.config.retry_timeout_ns,
            EventKind::ClientRetry {
                client_id,
                request_id,
            },
        );
        self.push(
            deliver_at,
            EventKind::ClientDeliver {
                node: target_node,
                request,
            },
        );
        if let Some(t) = self.telemetry.as_mut() {
            t.instant(SpanKind::ClientSubmit, target_node.0, self.now, client_id);
        }
        Ok(())
    }

    /// Processes the next event, advancing the virtual clock. Client issuance
    /// is reported back to the caller (see [`StepOutcome::NeedsIssue`]) so that
    /// the owner of the workload — the internal run loop or an external sharded
    /// driver — stays in control of what gets issued where.
    pub fn step(&mut self) -> StepOutcome {
        let Some(Reverse(event)) = self.queue.pop() else {
            return StepOutcome::Idle;
        };
        if event.at > self.config.max_virtual_ns {
            return StepOutcome::CapReached;
        }
        self.now = event.at;
        match event.kind {
            EventKind::Crash { node } => {
                if self.crashed.insert(node) {
                    if let Some(t) = self.telemetry.as_mut() {
                        t.instant(SpanKind::NodeCrash, node.0, self.now, 0);
                    }
                    // The trusted configuration service observes the failure
                    // and notifies the survivors after the detection delay.
                    let peers: Vec<NodeId> = self
                        .replicas
                        .iter()
                        .map(|r| r.id())
                        .filter(|&p| p != node)
                        .collect();
                    let notice_at = self.now + self.config.failure_detection_delay_ns;
                    for peer in peers {
                        self.push(
                            notice_at,
                            EventKind::PeerNotice {
                                node: peer,
                                about: node,
                                up: false,
                            },
                        );
                    }
                }
            }
            EventKind::Recover { node } => {
                if self.crashed.remove(&node) {
                    self.handle_recover(node);
                }
            }
            EventKind::PeerNotice { node, about, up } => {
                if self.crashed.contains(&node) {
                    return StepOutcome::Processed;
                }
                let idx = self.index_of(node);
                let view_before = self.replicas[idx].current_view();
                let mut ctx = Ctx::new(node, TrustedInstant::from_nanos(self.now));
                if up {
                    self.replicas[idx].on_peer_up(about, &mut ctx);
                } else {
                    self.replicas[idx].on_peer_down(about, &mut ctx);
                }
                if let Some(t) = self.telemetry.as_mut() {
                    let view_after = self.replicas[idx].current_view();
                    if view_after != view_before {
                        t.instant(SpanKind::ViewChange, node.0, self.now, view_after);
                    }
                }
                self.apply_effects(idx, ctx);
            }
            EventKind::ClientIssue { client_id } => {
                return StepOutcome::NeedsIssue { client_id };
            }
            EventKind::ClientRetry {
                client_id,
                request_id,
            } => {
                // Still outstanding? (No reply recorded and no newer request.)
                let outstanding = matches!(
                    self.issue_time.get(&client_id),
                    Some(out) if out.request_id == request_id
                ) && self.next_request_id.get(&client_id) == Some(&request_id);
                if !outstanding {
                    return StepOutcome::Processed;
                }
                // Resend the exact operation that was issued (the original code
                // re-drew from the workload closure, silently mutating stateful
                // generators on every retry).
                let operation = self.issue_time[&client_id].operation.clone();
                let request = ClientRequest {
                    client_id,
                    request_id,
                    operation,
                    signature: None,
                };
                if let Some(target_node) = self.route(&request.operation) {
                    let deliver_at = self.now + self.config.cost_model.link_latency_ns;
                    self.push(
                        deliver_at,
                        EventKind::ClientDeliver {
                            node: target_node,
                            request,
                        },
                    );
                }
                self.push(
                    self.now + self.config.retry_timeout_ns,
                    EventKind::ClientRetry {
                        client_id,
                        request_id,
                    },
                );
            }
            EventKind::ClientDeliver { node, request } => {
                if self.crashed.contains(&node) {
                    // Request lost. Internal clients give up on this request and
                    // issue a fresh one shortly; external drivers rely on the
                    // already-scheduled ClientRetry to resubmit it.
                    if !self.external_clients {
                        let client_id = request.client_id;
                        self.push(self.now + 5_000_000, EventKind::ClientIssue { client_id });
                    }
                    return StepOutcome::Processed;
                }
                let idx = self.index_of(node);
                let bytes = request.operation.value_len() + 64;
                let cost = self
                    .config
                    .cost_model
                    .recv_cost_ns(&self.config.profiles[idx], bytes);
                let finish = self.start_work(idx, cost);
                if let Some(t) = self.telemetry.as_mut() {
                    let breakdown = self
                        .config
                        .cost_model
                        .recv_breakdown(&self.config.profiles[idx], bytes);
                    t.charge(ChargeKind::ClientIngest, &breakdown);
                    t.span(
                        SpanKind::BatcherEnqueue,
                        node.0,
                        finish - cost,
                        finish,
                        request.client_id,
                    );
                }
                let mut ctx = Ctx::new(node, TrustedInstant::from_nanos(finish));
                self.replicas[idx].on_client_request(request, &mut ctx);
                self.apply_effects(idx, ctx);
            }
            EventKind::Deliver {
                from,
                to,
                bytes,
                ops,
            } => {
                if self.crashed.contains(&to) {
                    return StepOutcome::Processed;
                }
                self.stats.messages_delivered += 1;
                self.stats.ops_delivered += ops as u64;
                let idx = self.index_of(to);
                let cost = self.config.cost_model.batch_recv_cost_ns(
                    &self.config.profiles[idx],
                    ops as usize,
                    bytes.len(),
                );
                let finish = self.start_work(idx, cost);
                if let Some(t) = self.telemetry.as_mut() {
                    let breakdown = self.config.cost_model.batch_recv_breakdown(
                        &self.config.profiles[idx],
                        ops as usize,
                        bytes.len(),
                    );
                    let app_ns = breakdown.get(CostCategory::App)
                        + breakdown.get(CostCategory::TeeExec)
                        + breakdown.get(CostCategory::EpcPressure);
                    t.charge(ChargeKind::PeerDeliver, &breakdown);
                    t.span(
                        SpanKind::Replication,
                        to.0,
                        finish - cost,
                        finish,
                        ops as u64,
                    );
                    t.span(SpanKind::Apply, to.0, finish - app_ns, finish, ops as u64);
                }
                let view_before = self.replicas[idx].current_view();
                let mut ctx = Ctx::new(to, TrustedInstant::from_nanos(finish));
                self.replicas[idx].on_message(from, &bytes, &mut ctx);
                if let Some(t) = self.telemetry.as_mut() {
                    let view_after = self.replicas[idx].current_view();
                    if view_after != view_before {
                        t.instant(SpanKind::ViewChange, to.0, finish, view_after);
                    }
                }
                self.apply_effects(idx, ctx);
            }
            EventKind::Timer { node, token } => {
                if self.crashed.contains(&node) {
                    return StepOutcome::Processed;
                }
                let idx = self.index_of(node);
                let view_before = self.replicas[idx].current_view();
                let mut ctx = Ctx::new(node, TrustedInstant::from_nanos(self.now));
                self.replicas[idx].on_timer(token, &mut ctx);
                if let Some(t) = self.telemetry.as_mut() {
                    let view_after = self.replicas[idx].current_view();
                    if view_after != view_before {
                        t.instant(SpanKind::ViewChange, node.0, self.now, view_after);
                    }
                }
                self.apply_effects(idx, ctx);
            }
        }
        StepOutcome::Processed
    }

    /// Re-attests and restarts a node that just left the crashed set (the
    /// caller already removed it). Mirrors the paper's §3.7 recovery flow,
    /// with the simulator playing the attestation/configuration service:
    ///
    /// 1. **Channel resync** — both directions of every channel with a live
    ///    peer fast-forward their receive counters to the peer's trusted send
    ///    counter. Frames sealed while the node slept then reject as
    ///    *replays*: a recovering replica can neither act on stale traffic
    ///    nor wedge buffering an unfillable gap.
    /// 2. **View catch-up** — the node adopts the highest view any live peer
    ///    runs, so it can never accept traffic from a deposed leader.
    /// 3. **Rollback-protected rehydration** — [`Replica::on_restart`] drops
    ///    all volatile protocol state and re-verifies every host-resident
    ///    record against the enclave's sealed metadata; the verification work
    ///    is charged to the node's serialized compute and attributed to
    ///    `charge.recovery_ns`.
    /// 4. The configuration service notifies the survivors
    ///    ([`Replica::on_peer_up`]) after the detection delay.
    fn handle_recover(&mut self, node: NodeId) {
        let idx = self.index_of(node);
        let live_peers: Vec<(usize, NodeId)> = self
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.id() != node && !self.crashed.contains(&r.id()))
            .map(|(i, r)| (i, r.id()))
            .collect();
        let mut rejoin_view = self.replicas[idx].current_view();
        for &(peer_idx, peer) in &live_peers {
            let toward_node = self.replicas[peer_idx].channel_send_counter(node);
            self.replicas[idx].resync_channel_from(peer, toward_node);
            let toward_peer = self.replicas[idx].channel_send_counter(peer);
            self.replicas[peer_idx].resync_channel_from(node, toward_peer);
            rejoin_view = rejoin_view.max(self.replicas[peer_idx].current_view());
        }

        // §3.7 state snapshot: the first live peer exports its verified state
        // so writes committed while the node slept are caught up before it
        // serves anything. The export competes for the donor's compute.
        let snapshot = live_peers
            .first()
            .and_then(|&(peer_idx, _)| {
                self.replicas[peer_idx]
                    .export_recovery_snapshot()
                    .map(|entries| (peer_idx, entries))
            })
            .map(|(peer_idx, entries)| {
                let payload: usize = entries.iter().map(RangeEntry::payload_len).sum();
                let export_cost = self.config.cost_model.snapshot_export_cost_ns(
                    &self.config.profiles[peer_idx],
                    entries.len(),
                    payload,
                );
                let start = self.now.max(self.busy_until[peer_idx]);
                self.busy_until[peer_idx] = start + export_cost;
                if let Some(t) = self.telemetry.as_mut() {
                    let breakdown = self.config.cost_model.snapshot_export_breakdown(
                        &self.config.profiles[peer_idx],
                        entries.len(),
                        payload,
                    );
                    t.charge(ChargeKind::SnapshotExport, &breakdown);
                }
                (entries, payload)
            });
        let (snapshot_entries, snapshot_len, snapshot_bytes) = match snapshot {
            Some((entries, payload)) => {
                let len = entries.len();
                (Some(entries), len, payload)
            }
            None => (None, 0, 0),
        };

        let mut ctx = Ctx::new(node, TrustedInstant::from_nanos(self.now));
        let report = self.replicas[idx].on_restart(rejoin_view, snapshot_entries, &mut ctx);
        // In-flight prepare records ride the same catch-up transfer: the
        // donor exports every record it knows (real and passive) and the
        // joiner stores them as passive copies, so if it later re-wins
        // coordinatorship it can adopt the full in-flight set — its own
        // pre-crash staging was volatile enclave state and is gone.
        if let Some(&(donor_idx, _)) = live_peers.first() {
            let records = self.replicas[donor_idx].txn_export_records();
            for (txn_id, ops) in &records {
                self.replicas[idx].txn_import_record(*txn_id, ops);
            }
        }
        // The configuration the node is handed includes who is still down.
        let still_down: Vec<NodeId> = self.crashed.iter().copied().collect();
        for down in still_down {
            self.replicas[idx].on_peer_down(down, &mut ctx);
        }

        // The joiner pays for the verified re-scan of its sealed state plus
        // the import of the catch-up snapshot, serialized on its compute.
        let cost = self.config.cost_model.recovery_cost_ns(
            &self.config.profiles[idx],
            report.verified_entries as usize,
            report.payload_bytes as usize,
        ) + self.config.cost_model.snapshot_import_cost_ns(
            &self.config.profiles[idx],
            snapshot_len,
            snapshot_bytes,
        );
        let finish = self.start_work(idx, cost);
        if let Some(t) = self.telemetry.as_mut() {
            let mut breakdown = self.config.cost_model.recovery_breakdown(
                &self.config.profiles[idx],
                report.verified_entries as usize,
                report.payload_bytes as usize,
            );
            breakdown.merge(&self.config.cost_model.snapshot_import_breakdown(
                &self.config.profiles[idx],
                snapshot_len,
                snapshot_bytes,
            ));
            t.charge(ChargeKind::Recovery, &breakdown);
            t.span(
                SpanKind::NodeRecover,
                node.0,
                finish - cost,
                finish,
                report.verified_entries,
            );
        }
        self.apply_effects(idx, ctx);

        let notice_at = self.now + self.config.failure_detection_delay_ns;
        for &(_, peer) in &live_peers {
            self.push(
                notice_at,
                EventKind::PeerNotice {
                    node: peer,
                    about: node,
                    up: true,
                },
            );
        }
    }

    /// Finalizes and returns the statistics for everything processed so far.
    pub fn finish(&mut self) -> RunStats {
        self.finalize_stats();
        self.stats.clone()
    }

    /// Picks the coordinator for an operation among live replicas, round-robin.
    fn route(&mut self, operation: &Operation) -> Option<NodeId> {
        let is_write = operation.is_write();
        let candidates: Vec<NodeId> = self
            .replicas
            .iter()
            .filter(|r| !self.crashed.contains(&r.id()))
            .filter(|r| {
                if is_write {
                    r.coordinates_writes()
                } else {
                    r.coordinates_reads()
                }
            })
            .map(|r| r.id())
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let rr = if is_write {
            &mut self.write_rr
        } else {
            &mut self.read_rr
        };
        let choice = candidates[*rr % candidates.len()];
        *rr += 1;
        Some(choice)
    }

    /// Serializes work on a node: returns the finish time of a task of `cost_ns`.
    fn start_work(&mut self, idx: usize, cost_ns: u64) -> u64 {
        let start = self.now.max(self.busy_until[idx]);
        let finish = start + cost_ns;
        self.busy_until[idx] = finish;
        finish
    }

    fn apply_effects(&mut self, src_idx: usize, ctx: Ctx) {
        let src = self.replicas[src_idx].id();
        let (outbox, replies, timers) = ctx.take_effects();
        let mut send_finish = self.busy_until[src_idx];

        for (dst, bytes, ops) in outbox {
            // Sending costs the sender time (serialized on the node). Batch
            // frames pay their fixed transport/auth overhead once per frame.
            let send_cost = self.config.cost_model.batch_send_cost_ns(
                &self.config.profiles[src_idx],
                ops as usize,
                bytes.len(),
            );
            send_finish = send_finish.max(self.now) + send_cost;
            if let Some(t) = self.telemetry.as_mut() {
                let breakdown = self.config.cost_model.batch_send_breakdown(
                    &self.config.profiles[src_idx],
                    ops as usize,
                    bytes.len(),
                );
                t.charge(ChargeKind::FrameSend, &breakdown);
                t.span(
                    SpanKind::ShieldWrap,
                    src.0,
                    send_finish - send_cost,
                    send_finish,
                    ops as u64,
                );
            }

            // The Byzantine network decides the fate of the message.
            let wire = WireMessage {
                wire_id: self.next_seq,
                src,
                dst,
                is_response: false,
                buf: MsgBuf::new(ReqType::REPLICATE, bytes),
            };
            let decision = self.injector.decide(&wire);
            let extra_delay = self.injector.sample_extra_delay_ns();
            let deliver_at = send_finish + self.config.cost_model.link_latency_ns + extra_delay;
            match decision {
                FaultDecision::Deliver => self.push(
                    deliver_at,
                    EventKind::Deliver {
                        from: src,
                        to: dst,
                        bytes: wire.buf.payload,
                        ops,
                    },
                ),
                FaultDecision::Drop => {
                    self.stats.messages_dropped += 1;
                    if let Some(t) = self.telemetry.as_mut() {
                        t.instant(SpanKind::FaultDrop, dst.0, self.now, ops as u64);
                    }
                }
                FaultDecision::Tamper(corrupted) => {
                    self.stats.messages_tampered += 1;
                    if let Some(t) = self.telemetry.as_mut() {
                        t.instant(SpanKind::FaultTamper, dst.0, deliver_at, ops as u64);
                    }
                    self.push(
                        deliver_at,
                        EventKind::Deliver {
                            from: src,
                            to: dst,
                            bytes: corrupted.buf.payload,
                            ops,
                        },
                    );
                }
                FaultDecision::Duplicate => {
                    self.stats.messages_replayed += 1;
                    if let Some(t) = self.telemetry.as_mut() {
                        t.instant(SpanKind::FaultDuplicate, dst.0, deliver_at, ops as u64);
                    }
                    self.push(
                        deliver_at,
                        EventKind::Deliver {
                            from: src,
                            to: dst,
                            bytes: wire.buf.payload.clone(),
                            ops,
                        },
                    );
                    self.push(
                        deliver_at + 1,
                        EventKind::Deliver {
                            from: src,
                            to: dst,
                            bytes: wire.buf.payload,
                            ops,
                        },
                    );
                }
                FaultDecision::Replay(older) => {
                    self.stats.messages_replayed += 1;
                    if let Some(t) = self.telemetry.as_mut() {
                        t.instant(SpanKind::FaultReplay, dst.0, deliver_at, ops as u64);
                    }
                    self.push(
                        deliver_at,
                        EventKind::Deliver {
                            from: src,
                            to: dst,
                            bytes: wire.buf.payload,
                            ops,
                        },
                    );
                    // The op count of a historical frame is unknown to the
                    // adversary's replay buffer; the shield rejects it anyway,
                    // so it is charged as a single message.
                    self.push(
                        deliver_at + 1,
                        EventKind::Deliver {
                            from: older.src,
                            to: older.dst,
                            bytes: older.buf.payload,
                            ops: 1,
                        },
                    );
                }
            }
        }
        self.busy_until[src_idx] = send_finish.max(self.busy_until[src_idx]);

        for reply in replies {
            self.record_reply(reply);
        }
        for (delay, token) in timers {
            self.push(self.now + delay, EventKind::Timer { node: src, token });
        }
    }

    fn record_reply(&mut self, reply: ClientReply) {
        let client_id = reply.client_id;
        // Only the first reply for the *currently outstanding* request counts;
        // replicas in BFT protocols all reply, and late replies for older requests
        // must not be double-counted.
        let outstanding = matches!(self.issue_time.get(&client_id),
            Some(out) if out.request_id == reply.request_id);
        if !outstanding {
            return;
        }
        if let Some(out) = self.issue_time.remove(&client_id) {
            let latency = self.now.saturating_sub(out.issued_ns);
            self.latencies_ns.push(latency);
            if let Some(t) = self.telemetry.as_mut() {
                t.instant(SpanKind::Reply, reply.replier, self.now, client_id);
                t.record_latency(latency);
            }
            self.stats.committed += 1;
            // Classify by the *issued operation*, not by reply fields: a read
            // miss carries neither value nor found-flag, and write acks may set
            // `found` — both used to be miscounted.
            if out.is_write {
                self.stats.committed_writes += 1;
            } else {
                self.stats.committed_reads += 1;
            }
            if self.external_clients {
                self.completions.push(Completion {
                    client_id,
                    request_id: reply.request_id,
                    latency_ns: latency,
                    was_write: out.is_write,
                    at_ns: self.now,
                });
            } else {
                // Closed loop: the client issues its next request after a think time.
                let next = self.now
                    + self.config.cost_model.link_latency_ns
                    + self.config.cost_model.client_think_ns;
                self.push(next, EventKind::ClientIssue { client_id });
            }
        }
        // Replies for requests we are no longer waiting on (duplicates from multiple
        // replicas) are ignored: the first reply wins.
    }

    fn finalize_stats(&mut self) {
        let elapsed = self.now.max(1) as f64 / 1e9;
        self.stats.elapsed_secs = elapsed;
        self.stats.throughput_ops = self.stats.committed as f64 / elapsed;
        let mut sorted = self.latencies_ns.clone();
        let summary = latency_percentiles(&mut sorted);
        self.stats.mean_latency_us = summary.mean_us;
        self.stats.p50_latency_us = summary.p50_us;
        self.stats.p90_latency_us = summary.p90_us;
        self.stats.p99_latency_us = summary.p99_us;
        self.stats.p999_latency_us = summary.p999_us;
    }
}

/// Mean and tail percentiles of a latency sample, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median (50th percentile).
    pub p50_us: f64,
    /// 90th percentile.
    pub p90_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// 99.9th percentile.
    pub p999_us: f64,
}

/// Summarizes a latency sample as `(mean_us, p99_us)`, sorting the slice in
/// place. `(0.0, 0.0)` for an empty sample. Compatibility wrapper around
/// [`latency_percentiles`].
pub fn latency_summary(latencies_ns: &mut [u64]) -> (f64, f64) {
    let summary = latency_percentiles(latencies_ns);
    (summary.mean_us, summary.p99_us)
}

/// Computes the full [`LatencySummary`] of a sample, sorting the slice in
/// place. All zeros for an empty sample. Shared by the single-group and
/// sharded drivers so the percentile convention cannot drift between them:
/// percentile `q` is the element at index `(len as f64 * q) as usize`,
/// clamped to the last element.
pub fn latency_percentiles(latencies_ns: &mut [u64]) -> LatencySummary {
    if latencies_ns.is_empty() {
        return LatencySummary::default();
    }
    let sum: u64 = latencies_ns.iter().sum();
    let mean_us = sum as f64 / latencies_ns.len() as f64 / 1_000.0;
    latencies_ns.sort_unstable();
    let pick = |q: f64| {
        let idx = ((latencies_ns.len() as f64) * q) as usize;
        latencies_ns[idx.min(latencies_ns.len() - 1)] as f64 / 1_000.0
    };
    LatencySummary {
        mean_us,
        p50_us: pick(0.50),
        p90_us: pick(0.90),
        p99_us: pick(0.99),
        p999_us: pick(0.999),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial single-round "echo" protocol used to exercise the simulator itself:
    /// the coordinator broadcasts the write, followers ack, the coordinator replies
    /// to the client after a majority of acks.
    struct EchoReplica {
        id: NodeId,
        peers: Vec<NodeId>,
        pending: HashMap<u64, (ClientRequest, usize)>,
        next_op: u64,
        is_leader: bool,
    }

    impl EchoReplica {
        fn cluster(n: usize) -> Vec<EchoReplica> {
            let all: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
            (0..n as u64)
                .map(|id| EchoReplica {
                    id: NodeId(id),
                    peers: all.clone(),
                    pending: HashMap::new(),
                    next_op: 0,
                    is_leader: id == 0,
                })
                .collect()
        }
    }

    impl Replica for EchoReplica {
        fn id(&self) -> NodeId {
            self.id
        }

        fn on_client_request(&mut self, request: ClientRequest, ctx: &mut Ctx) {
            self.next_op += 1;
            let op_id = self.next_op;
            self.pending.insert(op_id, (request, 0));
            let mut msg = vec![0u8];
            msg.extend_from_slice(&op_id.to_le_bytes());
            msg.extend_from_slice(&self.id.0.to_le_bytes());
            ctx.broadcast(&self.peers, msg);
        }

        fn on_message(&mut self, from: NodeId, bytes: &[u8], ctx: &mut Ctx) {
            match bytes[0] {
                0 => {
                    // Proposal: ack back to the coordinator.
                    let mut ack = vec![1u8];
                    ack.extend_from_slice(&bytes[1..9]);
                    ctx.send(from, ack);
                }
                1 => {
                    let op_id = u64::from_le_bytes(bytes[1..9].try_into().unwrap());
                    if let Some((request, acks)) = self.pending.get_mut(&op_id) {
                        *acks += 1;
                        if *acks == 2 {
                            let reply = ClientReply {
                                client_id: request.client_id,
                                request_id: request.request_id,
                                value: None,
                                found: false,
                                replier: self.id.0,
                            };
                            ctx.reply(reply);
                        }
                    }
                }
                _ => unreachable!("unknown echo message"),
            }
        }

        fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx) {}

        fn coordinates_writes(&self) -> bool {
            self.is_leader
        }

        fn coordinates_reads(&self) -> bool {
            self.is_leader
        }

        fn protocol_name(&self) -> &'static str {
            "echo"
        }
    }

    fn small_config(n: usize, ops: usize) -> SimConfig {
        let mut config = SimConfig::uniform(n, CostProfile::recipe());
        config.clients = ClientModel {
            clients: 8,
            total_operations: ops,
        };
        config
    }

    fn write_workload(client: u64, seq: u64) -> Operation {
        Operation::Put {
            key: format!("k{client}-{seq}").into_bytes(),
            value: vec![0u8; 128],
        }
    }

    #[test]
    fn echo_protocol_commits_all_operations() {
        let mut cluster = SimCluster::new(EchoReplica::cluster(3), small_config(3, 300));
        let stats = cluster.run(write_workload);
        assert_eq!(stats.committed, 300);
        assert!(stats.throughput_ops > 0.0);
        assert!(stats.mean_latency_us > 0.0);
        assert!(stats.p99_latency_us >= stats.mean_latency_us);
        assert!(stats.messages_delivered > 0);
        assert_eq!(stats.messages_dropped, 0);
        assert!(stats.elapsed_secs > 0.0);
    }

    #[test]
    fn commits_are_classified_by_issued_operation_type() {
        // The echo protocol replies with `value: None, found: false` for every
        // operation — replies carry no usable type information, exactly like a
        // read miss. Classification must come from what was *issued*.
        let reads = SimCluster::new(EchoReplica::cluster(3), small_config(3, 120)).run(|c, s| {
            Operation::Get {
                key: format!("k{c}-{s}").into_bytes(),
            }
        });
        assert_eq!(reads.committed, 120);
        assert_eq!(reads.committed_reads, 120);
        assert_eq!(reads.committed_writes, 0);

        let writes =
            SimCluster::new(EchoReplica::cluster(3), small_config(3, 120)).run(write_workload);
        assert_eq!(writes.committed_writes, 120);
        assert_eq!(writes.committed_reads, 0);

        let mixed = SimCluster::new(EchoReplica::cluster(3), small_config(3, 120)).run(|c, s| {
            if s % 3 == 0 {
                Operation::Get {
                    key: format!("k{c}-{s}").into_bytes(),
                }
            } else {
                write_workload(c, s)
            }
        });
        assert_eq!(mixed.committed, 120);
        assert_eq!(mixed.committed_reads + mixed.committed_writes, 120);
        assert!(mixed.committed_reads > 0);
        assert!(mixed.committed_writes > mixed.committed_reads);
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let a = SimCluster::new(EchoReplica::cluster(3), small_config(3, 200)).run(write_workload);
        let b = SimCluster::new(EchoReplica::cluster(3), small_config(3, 200)).run(write_workload);
        assert_eq!(a, b);
    }

    #[test]
    fn faster_profiles_yield_higher_throughput() {
        let recipe =
            SimCluster::new(EchoReplica::cluster(3), small_config(3, 300)).run(write_workload);
        let mut slow_config = small_config(3, 300);
        slow_config.profiles = vec![CostProfile::pbft_baseline(); 3];
        let pbft_profile =
            SimCluster::new(EchoReplica::cluster(3), slow_config).run(write_workload);
        assert!(recipe.throughput_ops > pbft_profile.throughput_ops);
    }

    #[test]
    fn lossy_network_still_makes_progress_but_drops_messages() {
        let mut config = small_config(3, 100);
        config.fault_plan = FaultPlan::lossy(0.05);
        // With drops, some operations never gather 2 acks; the run ends at the
        // virtual-time cap with fewer commits — but it must not livelock or panic.
        config.max_virtual_ns = 2_000_000_000;
        let mut cluster = SimCluster::new(EchoReplica::cluster(3), config);
        let stats = cluster.run(write_workload);
        assert!(stats.messages_dropped > 0);
        assert!(stats.committed > 0);
    }

    #[test]
    fn crashed_coordinator_halts_commits() {
        let mut cluster = SimCluster::new(EchoReplica::cluster(3), {
            let mut c = small_config(3, 10_000);
            c.max_virtual_ns = 50_000_000; // 50 ms
            c
        });
        cluster.crash_at(NodeId(0), 1_000_000); // crash the only coordinator at 1 ms
        let stats = cluster.run(write_workload);
        // Commits happen only in the first millisecond.
        assert!(stats.committed < 10_000);
        assert!(cluster.crashed_nodes().contains(&NodeId(0)));
    }

    #[test]
    fn route_skips_crashed_nodes() {
        let mut cluster = SimCluster::new(EchoReplica::cluster(3), small_config(3, 10));
        cluster.crashed.insert(NodeId(0));
        assert_eq!(cluster.route(&write_workload(0, 1)), None); // only node 0 coordinates
    }

    #[test]
    fn replica_accessors_work() {
        let mut cluster = SimCluster::new(EchoReplica::cluster(3), small_config(3, 10));
        assert_eq!(cluster.replica(NodeId(1)).id(), NodeId(1));
        cluster.replica_mut(NodeId(2)).is_leader = true;
        assert!(cluster.replica(NodeId(2)).coordinates_writes());
        assert_eq!(cluster.now_ns(), 0);
    }
}

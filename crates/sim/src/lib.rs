//! Deterministic discrete-event cluster simulator.
//!
//! The paper evaluates Recipe on a three-machine SGX cluster with a 40 GbE fabric;
//! this crate replaces that testbed (DESIGN.md, hardware substitutions) with a
//! simulator that:
//!
//! * executes the *real* protocol logic and *real* cryptography of every replica
//!   (replicas are [`replica::Replica`] state machines — the same code the examples
//!   and integration tests run);
//! * moves messages through a Byzantine network model
//!   ([`recipe_net::NetworkFaultInjector`]) with configurable delays, drops,
//!   duplication, tampering and replays;
//! * accounts the work each node performs through a calibrated cost model
//!   ([`cost::CostProfile`]) driving a virtual clock, so throughput and latency
//!   reported by [`cluster::RunStats`] reflect the *relative* behaviour of the
//!   protocols rather than the wall-clock speed of this machine;
//! * is fully deterministic for a given seed — every experiment in the benchmark
//!   harness is reproducible bit-for-bit.
//!
//! The main entry point is [`cluster::SimCluster`], which owns the replicas, the
//! clock, the network and a set of closed-loop clients.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod cost;
pub mod replica;

pub use cluster::{
    latency_percentiles, latency_summary, ClientModel, Completion, LatencySummary, RunStats,
    SimCluster, SimConfig, StepOutcome,
};
pub use cost::{CostProfile, ProtocolCostModel};
pub use replica::{
    Ctx, RangeEntry, RangeStateTransfer, Replica, RestartReport, TxnRecordOps, TxnVote,
};

pub use recipe_tee::TrustedInstant as SimTime;

//! The calibrated cost model that drives the simulator's virtual clock.
//!
//! Every unit of work a replica performs is converted into virtual nanoseconds:
//!
//! * **network send/receive** — delegated to [`recipe_net::NetCostModel`], so the
//!   protocol experiments and the Figure 6b network microbenchmark share one set of
//!   transport parameters;
//! * **authentication layer** — MAC computation/verification and counter handling
//!   per shielded message;
//! * **application processing** — request parsing, KV index work, queueing; scaled
//!   by the TEE execution penalty and by EPC pressure when values are large
//!   (Figure 3) — the [`recipe_tee::EpcModel`] supplies the pressure curve;
//! * **confidentiality** — an extra encrypt/decrypt pass over the payload
//!   (Figure 5);
//! * **baseline handicaps** — the PBFT baseline (BFT-Smart) runs over kernel
//!   sockets without direct I/O (paper Table 2) and carries a heavier per-message
//!   software stack, expressed as its own [`CostProfile`].
//!
//! Calibration targets the *relative* numbers the paper reports; EXPERIMENTS.md
//! records paper-vs-measured for every figure.

use recipe_net::{ExecMode, NetCostModel, Transport};
use recipe_tee::EpcModel;
use recipe_telemetry::{CostBreakdown, CostCategory};
use serde::{Deserialize, Serialize};

/// Cumulative truncation: accumulates f64 cost components in expression order
/// and yields the integer nanoseconds each component adds on top of the
/// previous truncation, so that the emitted integers always sum to the
/// truncation of the full sum — exactly what the cost functions charge.
#[derive(Debug, Default)]
struct Cum {
    acc: f64,
    prev: u64,
}

impl Cum {
    fn push(&mut self, component: f64) -> u64 {
        self.acc += component;
        let cur = self.acc as u64;
        let delta = cur - self.prev;
        self.prev = cur;
        delta
    }
}

/// Per-node execution profile: where the node runs and which layers it pays for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostProfile {
    /// Native or TEE execution.
    pub exec: ExecMode,
    /// Kernel sockets or direct I/O.
    pub transport: Transport,
    /// Whether the Recipe authentication/non-equivocation layer is active.
    pub shielded: bool,
    /// Whether payloads/values are encrypted (confidential mode).
    pub confidential: bool,
    /// Whether this node verifies/produces asymmetric signatures per message
    /// (classical BFT baselines) instead of symmetric MACs.
    pub uses_signatures: bool,
    /// Fixed application-level processing cost per message, nanoseconds
    /// (request parsing, queue handling, index update).
    pub app_base_ns: f64,
    /// Usable EPC bytes for this node's enclave (drives the value-size cliff).
    pub epc_bytes: usize,
    /// Approximate enclave-resident working set in bytes *excluding* per-message
    /// payload buffers (index, metadata, protocol queues).
    pub resident_bytes: usize,
    /// Number of message payloads resident in enclave buffers at a time
    /// (batching factor; larger batches stress the EPC, §B.3).
    pub inflight_messages: usize,
    /// Leader-side batching factor: how many protocol ops ride in one wire
    /// frame. `1` disables batching. The experiment harness derives the
    /// replicas' `BatchConfig` from this field (see `recipe-bench`), keeping
    /// replica batching and profile bookkeeping in sync; the cost accounting
    /// itself charges by the actual op count carried on each frame
    /// (`batch_send_cost_ns`/`batch_recv_cost_ns`).
    pub batch_ops: usize,
}

impl CostProfile {
    /// A Recipe-transformed replica: TEE + direct I/O + authentication layer.
    pub fn recipe() -> Self {
        CostProfile {
            exec: ExecMode::Tee,
            transport: Transport::DirectIo,
            shielded: true,
            confidential: false,
            uses_signatures: false,
            app_base_ns: 550.0,
            epc_bytes: recipe_tee::epc::DEFAULT_EPC_BYTES,
            resident_bytes: 2 * 1024 * 1024,
            inflight_messages: 2_048,
            batch_ops: 1,
        }
    }

    /// The same stack without the authentication layer and outside a TEE — the
    /// "native" baseline of Figure 6a.
    pub fn native_cft() -> Self {
        CostProfile {
            exec: ExecMode::Native,
            transport: Transport::DirectIo,
            shielded: false,
            confidential: false,
            uses_signatures: false,
            app_base_ns: 550.0,
            epc_bytes: usize::MAX / 2,
            resident_bytes: 0,
            inflight_messages: 0,
            batch_ops: 1,
        }
    }

    /// The PBFT baseline (BFT-Smart): no TEE, kernel sockets, signature-based
    /// authentication, heavier per-message software stack (managed runtime,
    /// request batching pipeline).
    pub fn pbft_baseline() -> Self {
        CostProfile {
            exec: ExecMode::Native,
            transport: Transport::KernelSockets,
            shielded: false,
            confidential: false,
            uses_signatures: true,
            app_base_ns: 2_400.0,
            epc_bytes: usize::MAX / 2,
            resident_bytes: 0,
            inflight_messages: 0,
            batch_ops: 1,
        }
    }

    /// The Damysus baseline: TEE-assisted streamlined HotStuff, kernel sockets
    /// (paper Table 2 marks hybrid BFT protocols as not using direct I/O).
    pub fn damysus_baseline() -> Self {
        CostProfile {
            exec: ExecMode::Tee,
            transport: Transport::KernelSockets,
            shielded: true,
            confidential: false,
            uses_signatures: false,
            app_base_ns: 1_100.0,
            epc_bytes: recipe_tee::epc::DEFAULT_EPC_BYTES,
            resident_bytes: 2 * 1024 * 1024,
            inflight_messages: 256,
            batch_ops: 1,
        }
    }

    /// Enables confidential mode on this profile.
    pub fn confidential(mut self) -> Self {
        self.confidential = true;
        self
    }

    /// Sets confidential mode from a per-group policy: the encryption cost
    /// term follows the group's [`recipe_core::ConfidentialityMode`], so a
    /// mixed deployment charges it exactly on the shards whose policy asks
    /// for it. Overwrites (in both directions) whatever the profile carried.
    pub fn with_confidentiality(mut self, mode: recipe_core::ConfidentialityMode) -> Self {
        self.confidential = mode.is_confidential();
        self
    }

    /// Sets the batching factor (in-flight payload buffers inside the enclave).
    pub fn with_inflight(mut self, messages: usize) -> Self {
        self.inflight_messages = messages;
        self
    }

    /// Sets the leader-side batching factor (ops per wire frame).
    pub fn with_batch_ops(mut self, ops: usize) -> Self {
        self.batch_ops = ops.max(1);
        self
    }
}

/// The full protocol cost model: network parameters plus crypto/app constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolCostModel {
    /// Shared network cost parameters (also used by the Figure 6b bench).
    pub net: NetCostModel,
    /// Cost of a MAC computation or verification, nanoseconds (fixed part).
    pub mac_ns: f64,
    /// Per-byte cost of MAC/hash computation, nanoseconds.
    pub mac_per_byte_ns: f64,
    /// Cost of an asymmetric signature generation/verification, nanoseconds.
    pub signature_ns: f64,
    /// Per-byte cost of symmetric encryption (confidential mode), nanoseconds.
    pub encrypt_per_byte_ns: f64,
    /// Multiplier on application processing when executed inside a TEE
    /// (enclave transitions, shielded memory accesses).
    pub tee_app_penalty: f64,
    /// One-way network propagation delay between any two nodes, nanoseconds
    /// (same-rack datacenter fabric).
    pub link_latency_ns: u64,
    /// Time a client waits between receiving a reply and issuing its next request.
    pub client_think_ns: u64,
    /// Marginal cost per additional op inside a batch frame, nanoseconds
    /// (sub-frame parsing/dispatch; the fixed transport + MAC/AEAD setup is
    /// charged once per frame).
    pub batch_op_overhead_ns: f64,
}

impl Default for ProtocolCostModel {
    fn default() -> Self {
        ProtocolCostModel {
            net: NetCostModel::default(),
            mac_ns: 380.0,
            mac_per_byte_ns: 0.45,
            signature_ns: 14_000.0,
            encrypt_per_byte_ns: 1.1,
            tee_app_penalty: 2.6,
            link_latency_ns: 5_000,
            client_think_ns: 1_000,
            batch_op_overhead_ns: 40.0,
        }
    }
}

impl ProtocolCostModel {
    /// Cost for a node with `profile` to send one message of `payload_bytes`.
    pub fn send_cost_ns(&self, profile: &CostProfile, payload_bytes: usize) -> u64 {
        self.message_cost_f64(profile, payload_bytes) as u64
    }

    /// Cost for a node with `profile` to send one **batch frame** carrying
    /// `ops` protocol messages in `frame_bytes` total.
    ///
    /// This is where the batching pipeline's cost accounting lives: the fixed
    /// per-message overheads — transport setup, MAC/AEAD fixed cost, signature —
    /// are charged **once per frame**, not once per op; each op past the first
    /// pays only the [`ProtocolCostModel::batch_op_overhead_ns`] marginal plus
    /// its share of the per-byte work already captured by `frame_bytes`.
    /// Degenerates to [`ProtocolCostModel::send_cost_ns`] at `ops == 1`.
    pub fn batch_send_cost_ns(&self, profile: &CostProfile, ops: usize, frame_bytes: usize) -> u64 {
        if ops <= 1 {
            return self.send_cost_ns(profile, frame_bytes);
        }
        (self.message_cost_f64(profile, frame_bytes) + (ops - 1) as f64 * self.batch_op_overhead_ns)
            as u64
    }

    /// Cost for a node with `profile` to receive and fully process one message of
    /// `payload_bytes` (transport + authentication + application work).
    pub fn recv_cost_ns(&self, profile: &CostProfile, payload_bytes: usize) -> u64 {
        // Truncate the message and application terms separately, exactly as the
        // seed did: a joint truncation can differ by 1 ns, which is enough to
        // reorder events and break bit-for-bit parity of unbatched runs.
        self.message_cost_f64(profile, payload_bytes) as u64
            + self.app_cost_f64(profile, payload_bytes) as u64
    }

    /// Cost for a node with `profile` to receive and fully process one **batch
    /// frame** of `ops` messages in `frame_bytes` total: the fixed transport +
    /// authentication cost once per frame (single MAC check, single counter,
    /// one AEAD pass), but the **application work is still charged per op** —
    /// amortization must not hide real per-request processing. EPC pressure is
    /// evaluated per frame via [`ProtocolCostModel::batch_epc_pressure`] (§B.3).
    /// Degenerates to [`ProtocolCostModel::recv_cost_ns`] at `ops == 1`.
    pub fn batch_recv_cost_ns(&self, profile: &CostProfile, ops: usize, frame_bytes: usize) -> u64 {
        if ops <= 1 {
            return self.recv_cost_ns(profile, frame_bytes);
        }
        let pressure = self.batch_epc_pressure(profile, ops, frame_bytes);
        (self.message_cost_f64(profile, frame_bytes)
            + (ops - 1) as f64 * self.batch_op_overhead_ns
            + ops as f64 * self.app_cost_with_pressure(profile, pressure)) as u64
    }

    /// Application-only processing cost (no transport), e.g. applying a committed
    /// write to the local KV store.
    pub fn app_cost_ns(&self, profile: &CostProfile, payload_bytes: usize) -> u64 {
        self.app_cost_f64(profile, payload_bytes) as u64
    }

    fn app_cost_f64(&self, profile: &CostProfile, payload_bytes: usize) -> f64 {
        self.app_cost_with_pressure(profile, self.epc_pressure(profile, payload_bytes))
    }

    fn app_cost_with_pressure(&self, profile: &CostProfile, pressure: f64) -> f64 {
        let tee_mult = match profile.exec {
            ExecMode::Native => 1.0,
            ExecMode::Tee => self.tee_app_penalty,
        };
        profile.app_base_ns * tee_mult * pressure
    }

    /// EPC paging pressure factor for this node, given the payload size of the
    /// messages it is currently handling.
    pub fn epc_pressure(&self, profile: &CostProfile, payload_bytes: usize) -> f64 {
        if profile.exec == ExecMode::Native {
            return 1.0;
        }
        let mut epc = EpcModel::new(profile.epc_bytes);
        let resident = profile.resident_bytes + profile.inflight_messages * payload_bytes;
        let _ = epc.allocate(resident);
        epc.pressure_factor()
    }

    /// EPC paging pressure for a node handling **batch frames** of `ops` ops in
    /// `frame_bytes` total. Batching repacks the same in-flight op payloads
    /// into `inflight_messages / ops` frames — the resident population does not
    /// multiply with the frame size, but each frame is enclave-resident as a
    /// unit, so large frames of large values still cross the EPC cliff (§B.3).
    /// Degenerates to [`ProtocolCostModel::epc_pressure`] at `ops == 1`.
    pub fn batch_epc_pressure(&self, profile: &CostProfile, ops: usize, frame_bytes: usize) -> f64 {
        if profile.exec == ExecMode::Native {
            return 1.0;
        }
        let ops = ops.max(1);
        let frames = (profile.inflight_messages / ops).max(1);
        let mut epc = EpcModel::new(profile.epc_bytes);
        let resident = profile.resident_bytes + frames * frame_bytes;
        let _ = epc.allocate(resident);
        epc.pressure_factor()
    }

    /// EPC paging pressure while a migration chunk of `staged_bytes` is staged
    /// inside the enclave on top of the node's resident working set. Snapshot
    /// export/import batches whole chunks through enclave memory, so large
    /// chunks of large values cross the EPC cliff exactly like large batch
    /// frames do (§B.3) — which is why the migration controller ships bounded
    /// chunks instead of one monolithic snapshot.
    pub fn migration_epc_pressure(&self, profile: &CostProfile, staged_bytes: usize) -> f64 {
        if profile.exec == ExecMode::Native {
            return 1.0;
        }
        let mut epc = EpcModel::new(profile.epc_bytes);
        let _ = epc.allocate(profile.resident_bytes + staged_bytes);
        epc.pressure_factor()
    }

    /// Cost for the donor leader to export one snapshot/catch-up chunk of
    /// `entries` records totalling `payload_bytes`: per-entry index walk and
    /// integrity re-hash (the partitioned store verifies every value it copies
    /// out of host memory) plus the per-byte hash work, all under the EPC
    /// pressure of staging the chunk. The shield/wire leg is charged
    /// separately via [`ProtocolCostModel::send_cost_ns`] on the sealed frame.
    pub fn snapshot_export_cost_ns(
        &self,
        profile: &CostProfile,
        entries: usize,
        payload_bytes: usize,
    ) -> u64 {
        let pressure = self.migration_epc_pressure(profile, payload_bytes);
        (entries as f64 * self.app_cost_with_pressure(profile, pressure)
            + payload_bytes as f64 * self.mac_per_byte_ns) as u64
    }

    /// Cost for a restarting replica to rehydrate rollback-protected state:
    /// every host-resident record is re-read through the verified path —
    /// per-entry store work under the same EPC pressure a bulk scan of
    /// `payload_bytes` causes, plus the per-byte MAC of re-verifying the
    /// sealed values against the trusted counter. Same shape as a snapshot
    /// export (both are verified bulk scans of the local store).
    pub fn recovery_cost_ns(
        &self,
        profile: &CostProfile,
        entries: usize,
        payload_bytes: usize,
    ) -> u64 {
        self.snapshot_export_cost_ns(profile, entries, payload_bytes)
    }

    /// Cost for a recipient replica to verify and apply one chunk of `entries`
    /// records in a sealed frame of `frame_bytes`: the frame's transport +
    /// authentication cost once (single MAC/AEAD pass over the chunk — the
    /// same amortization the batch path gets), then per-entry store writes
    /// under the staging EPC pressure.
    pub fn snapshot_import_cost_ns(
        &self,
        profile: &CostProfile,
        entries: usize,
        frame_bytes: usize,
    ) -> u64 {
        let pressure = self.migration_epc_pressure(profile, frame_bytes);
        (self.message_cost_f64(profile, frame_bytes)
            + entries as f64 * self.app_cost_with_pressure(profile, pressure)) as u64
    }

    /// EPC paging pressure while a transaction prepare stages `staged_bytes`
    /// of locked keys and pending writes inside the enclave on top of the
    /// node's resident working set. Staged state is enclave-resident from
    /// prepare until commit/abort (the lock table is trusted metadata like
    /// the index), so many large in-flight prepares cross the EPC cliff
    /// exactly like large batch frames and migration chunks do (§B.3).
    pub fn txn_epc_pressure(&self, profile: &CostProfile, staged_bytes: usize) -> f64 {
        self.migration_epc_pressure(profile, staged_bytes)
    }

    /// Cost for a participant leader to verify and execute one 2PC prepare
    /// frame of `ops` operations totalling `payload_bytes`: the sealed
    /// frame's transport + authentication cost once (single MAC/AEAD pass),
    /// then per-op lock + staging work under the EPC pressure of keeping the
    /// staged writes enclave-resident (`staged_bytes` is the store's total
    /// in-flight staged footprint *including* this prepare).
    pub fn txn_prepare_cost_ns(
        &self,
        profile: &CostProfile,
        ops: usize,
        payload_bytes: usize,
        staged_bytes: usize,
    ) -> u64 {
        let pressure = self.txn_epc_pressure(profile, staged_bytes);
        (self.message_cost_f64(profile, payload_bytes)
            + ops.max(1) as f64 * self.app_cost_with_pressure(profile, pressure)) as u64
    }

    /// Cost for a participant leader to verify and execute one 2PC
    /// commit/abort frame resolving `writes` staged writes totalling
    /// `payload_bytes`: the frame's transport + authentication cost once,
    /// then per-write apply work (the same application work a single-key
    /// write pays — amortization covers the shield, never the store).
    pub fn txn_commit_cost_ns(
        &self,
        profile: &CostProfile,
        writes: usize,
        payload_bytes: usize,
    ) -> u64 {
        let pressure = self.txn_epc_pressure(profile, payload_bytes);
        (self.message_cost_f64(profile, 64)
            + writes as f64 * self.app_cost_with_pressure(profile, pressure)
            + payload_bytes as f64 * self.mac_per_byte_ns) as u64
    }

    // -----------------------------------------------------------------------
    // Cost attribution (telemetry)
    // -----------------------------------------------------------------------
    //
    // Each `*_breakdown` function mirrors its `*_cost_ns` sibling and splits
    // the charged integer across `recipe_telemetry::CostCategory` slots. The
    // invariant every one of them keeps (pinned by tests below):
    //
    //     breakdown.total() == the exact u64 the cost function returns
    //
    // which is what lets the attribution table reconcile against the virtual
    // clock. To guarantee it, the component terms are accumulated in the same
    // floating-point expression order the cost functions use and cumulatively
    // truncated (`Cum`); sub-splits of a jointly-added term (MAC bytes vs the
    // fixed counter slot, TEE multiplier vs EPC pressure) divide the already-
    // truncated integer, so rounding crumbs can never change the total.

    /// Attribution twin of [`ProtocolCostModel::send_cost_ns`].
    pub fn send_breakdown(&self, profile: &CostProfile, payload_bytes: usize) -> CostBreakdown {
        let mut b = CostBreakdown::new();
        let mut cum = Cum::default();
        self.add_message_parts(&mut b, &mut cum, profile, payload_bytes);
        b
    }

    /// Attribution twin of [`ProtocolCostModel::batch_send_cost_ns`].
    pub fn batch_send_breakdown(
        &self,
        profile: &CostProfile,
        ops: usize,
        frame_bytes: usize,
    ) -> CostBreakdown {
        if ops <= 1 {
            return self.send_breakdown(profile, frame_bytes);
        }
        let mut b = CostBreakdown::new();
        let mut cum = Cum::default();
        self.add_message_parts(&mut b, &mut cum, profile, frame_bytes);
        b.add(
            CostCategory::BatchOverhead,
            cum.push((ops - 1) as f64 * self.batch_op_overhead_ns),
        );
        b
    }

    /// Attribution twin of [`ProtocolCostModel::recv_cost_ns`]. The message
    /// and application terms are truncated separately, exactly like the cost
    /// function (see the comment there on event-order parity).
    pub fn recv_breakdown(&self, profile: &CostProfile, payload_bytes: usize) -> CostBreakdown {
        let mut b = CostBreakdown::new();
        let mut msg = Cum::default();
        self.add_message_parts(&mut b, &mut msg, profile, payload_bytes);
        let mut app = Cum::default();
        self.add_app_parts(
            &mut b,
            &mut app,
            profile,
            1.0,
            self.epc_pressure(profile, payload_bytes),
        );
        b
    }

    /// Attribution twin of [`ProtocolCostModel::batch_recv_cost_ns`].
    pub fn batch_recv_breakdown(
        &self,
        profile: &CostProfile,
        ops: usize,
        frame_bytes: usize,
    ) -> CostBreakdown {
        if ops <= 1 {
            return self.recv_breakdown(profile, frame_bytes);
        }
        let pressure = self.batch_epc_pressure(profile, ops, frame_bytes);
        let mut b = CostBreakdown::new();
        let mut cum = Cum::default();
        self.add_message_parts(&mut b, &mut cum, profile, frame_bytes);
        b.add(
            CostCategory::BatchOverhead,
            cum.push((ops - 1) as f64 * self.batch_op_overhead_ns),
        );
        self.add_app_parts(&mut b, &mut cum, profile, ops as f64, pressure);
        b
    }

    /// Attribution twin of [`ProtocolCostModel::snapshot_export_cost_ns`].
    pub fn snapshot_export_breakdown(
        &self,
        profile: &CostProfile,
        entries: usize,
        payload_bytes: usize,
    ) -> CostBreakdown {
        let pressure = self.migration_epc_pressure(profile, payload_bytes);
        let mut b = CostBreakdown::new();
        let mut cum = Cum::default();
        self.add_app_parts(&mut b, &mut cum, profile, entries as f64, pressure);
        b.add(
            CostCategory::Mac,
            cum.push(payload_bytes as f64 * self.mac_per_byte_ns),
        );
        b
    }

    /// Attribution twin of [`ProtocolCostModel::recovery_cost_ns`].
    pub fn recovery_breakdown(
        &self,
        profile: &CostProfile,
        entries: usize,
        payload_bytes: usize,
    ) -> CostBreakdown {
        self.snapshot_export_breakdown(profile, entries, payload_bytes)
    }

    /// Attribution twin of [`ProtocolCostModel::snapshot_import_cost_ns`].
    pub fn snapshot_import_breakdown(
        &self,
        profile: &CostProfile,
        entries: usize,
        frame_bytes: usize,
    ) -> CostBreakdown {
        let pressure = self.migration_epc_pressure(profile, frame_bytes);
        let mut b = CostBreakdown::new();
        let mut cum = Cum::default();
        self.add_message_parts(&mut b, &mut cum, profile, frame_bytes);
        self.add_app_parts(&mut b, &mut cum, profile, entries as f64, pressure);
        b
    }

    /// Attribution twin of [`ProtocolCostModel::txn_prepare_cost_ns`].
    pub fn txn_prepare_breakdown(
        &self,
        profile: &CostProfile,
        ops: usize,
        payload_bytes: usize,
        staged_bytes: usize,
    ) -> CostBreakdown {
        let pressure = self.txn_epc_pressure(profile, staged_bytes);
        let mut b = CostBreakdown::new();
        let mut cum = Cum::default();
        self.add_message_parts(&mut b, &mut cum, profile, payload_bytes);
        self.add_app_parts(&mut b, &mut cum, profile, ops.max(1) as f64, pressure);
        b
    }

    /// Attribution twin of [`ProtocolCostModel::txn_commit_cost_ns`].
    pub fn txn_commit_breakdown(
        &self,
        profile: &CostProfile,
        writes: usize,
        payload_bytes: usize,
    ) -> CostBreakdown {
        let pressure = self.txn_epc_pressure(profile, payload_bytes);
        let mut b = CostBreakdown::new();
        let mut cum = Cum::default();
        self.add_message_parts(&mut b, &mut cum, profile, 64);
        self.add_app_parts(&mut b, &mut cum, profile, writes as f64, pressure);
        b.add(
            CostCategory::Mac,
            cum.push(payload_bytes as f64 * self.mac_per_byte_ns),
        );
        b
    }

    /// Pushes the message-cost components (transport, shield, signature,
    /// AEAD) in the exact accumulation order of
    /// [`ProtocolCostModel::message_cost_f64`].
    fn add_message_parts(
        &self,
        b: &mut CostBreakdown,
        cum: &mut Cum,
        profile: &CostProfile,
        payload_bytes: usize,
    ) {
        b.add(
            CostCategory::Transport,
            cum.push(
                self.net
                    .message_cost_ns(profile.transport, profile.exec, payload_bytes),
            ),
        );
        if profile.shielded {
            let mac_bytes = payload_bytes as f64 * self.mac_per_byte_ns;
            let shield = cum.push(self.mac_ns + mac_bytes);
            let mac = (mac_bytes as u64).min(shield);
            b.add(CostCategory::Mac, mac);
            b.add(CostCategory::CounterSlot, shield - mac);
        }
        if profile.uses_signatures {
            b.add(CostCategory::Signature, cum.push(self.signature_ns));
        }
        if profile.confidential {
            b.add(
                CostCategory::Aead,
                cum.push(payload_bytes as f64 * self.encrypt_per_byte_ns),
            );
        }
    }

    /// Pushes the application-work term `ops × app_cost_with_pressure` and
    /// splits its integer between base app work, the TEE-execution excess and
    /// the EPC-pressure excess (rounding crumbs land in the base slot).
    fn add_app_parts(
        &self,
        b: &mut CostBreakdown,
        cum: &mut Cum,
        profile: &CostProfile,
        ops: f64,
        pressure: f64,
    ) {
        let acwp = self.app_cost_with_pressure(profile, pressure);
        let total = cum.push(ops * acwp);
        let tee_mult = match profile.exec {
            ExecMode::Native => 1.0,
            ExecMode::Tee => self.tee_app_penalty,
        };
        let no_pressure = profile.app_base_ns * tee_mult;
        let epc = ((ops * (acwp - no_pressure)) as u64).min(total);
        let tee = ((ops * (no_pressure - profile.app_base_ns)) as u64).min(total - epc);
        b.add(CostCategory::EpcPressure, epc);
        b.add(CostCategory::TeeExec, tee);
        b.add(CostCategory::App, total - epc - tee);
    }

    fn message_cost_f64(&self, profile: &CostProfile, payload_bytes: usize) -> f64 {
        let mut cost = self
            .net
            .message_cost_ns(profile.transport, profile.exec, payload_bytes);
        if profile.shielded {
            cost += self.mac_ns + payload_bytes as f64 * self.mac_per_byte_ns;
        }
        if profile.uses_signatures {
            cost += self.signature_ns;
        }
        if profile.confidential {
            cost += payload_bytes as f64 * self.encrypt_per_byte_ns;
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipe_profile_is_cheaper_per_message_than_pbft() {
        let m = ProtocolCostModel::default();
        let recipe = m.recv_cost_ns(&CostProfile::recipe(), 256);
        let pbft = m.recv_cost_ns(&CostProfile::pbft_baseline(), 256);
        assert!(
            pbft > recipe,
            "PBFT per-message cost ({pbft}) should exceed Recipe's ({recipe})"
        );
    }

    #[test]
    fn native_cft_is_cheaper_than_recipe() {
        // Figure 6a: the transformation + TEE costs something (2x-15x end to end).
        let m = ProtocolCostModel::default();
        let native = m.recv_cost_ns(&CostProfile::native_cft(), 256);
        let recipe = m.recv_cost_ns(&CostProfile::recipe(), 256);
        let ratio = recipe as f64 / native as f64;
        assert!(ratio > 1.5, "ratio was {ratio:.2}");
        assert!(ratio < 20.0, "ratio was {ratio:.2}");
    }

    #[test]
    fn confidentiality_adds_cost_proportional_to_payload() {
        let m = ProtocolCostModel::default();
        let plain = m.recv_cost_ns(&CostProfile::recipe(), 1024);
        let conf = m.recv_cost_ns(&CostProfile::recipe().confidential(), 1024);
        assert!(conf > plain);
        let plain_small = m.recv_cost_ns(&CostProfile::recipe(), 64);
        let conf_small = m.recv_cost_ns(&CostProfile::recipe().confidential(), 64);
        assert!(conf - plain > conf_small - plain_small);
    }

    #[test]
    fn epc_pressure_kicks_in_for_large_values() {
        let m = ProtocolCostModel::default();
        let profile = CostProfile::recipe();
        let small = m.epc_pressure(&profile, 256);
        let large = m.epc_pressure(&profile, 4096);
        assert_eq!(small, 1.0);
        assert!(
            large > 1.0,
            "4 KiB payloads with batching should exceed the EPC"
        );
        // Reducing the batching factor relieves the pressure (the paper's mitigation
        // for 4 KiB values, §B.3).
        let little_batching = m.epc_pressure(&profile.clone().with_inflight(4), 4096);
        assert!(little_batching < large);
        // Native execution never pays EPC pressure.
        assert_eq!(m.epc_pressure(&CostProfile::native_cft(), 1 << 20), 1.0);
    }

    #[test]
    fn signature_baselines_pay_per_message() {
        let m = ProtocolCostModel::default();
        let mut signing = CostProfile::native_cft();
        signing.uses_signatures = true;
        assert!(
            m.recv_cost_ns(&signing, 64) as f64
                >= m.recv_cost_ns(&CostProfile::native_cft(), 64) as f64 + m.signature_ns * 0.9
        );
    }

    #[test]
    fn costs_scale_with_payload_size() {
        let m = ProtocolCostModel::default();
        let p = CostProfile::recipe();
        assert!(m.recv_cost_ns(&p, 4096) > m.recv_cost_ns(&p, 256));
        assert!(m.send_cost_ns(&p, 4096) > m.send_cost_ns(&p, 256));
    }

    #[test]
    fn batch_cost_degenerates_to_single_message_cost_at_one_op() {
        let m = ProtocolCostModel::default();
        for profile in [
            CostProfile::recipe(),
            CostProfile::recipe().confidential(),
            CostProfile::native_cft(),
            CostProfile::pbft_baseline(),
        ] {
            for bytes in [64usize, 256, 1024] {
                assert_eq!(
                    m.batch_send_cost_ns(&profile, 1, bytes),
                    m.send_cost_ns(&profile, bytes)
                );
                assert_eq!(
                    m.batch_recv_cost_ns(&profile, 1, bytes),
                    m.recv_cost_ns(&profile, bytes)
                );
            }
        }
    }

    #[test]
    fn fixed_overhead_is_charged_once_per_frame_not_once_per_op() {
        // The regression this pins: sending N ops as one frame must cost less
        // than sending N single messages of the same total payload, and the
        // saving must be at least the (N-1) repeated fixed MAC + transport
        // setup costs the unbatched path pays.
        let m = ProtocolCostModel::default();
        let profile = CostProfile::recipe().confidential();
        let per_op_bytes = 256usize;
        for ops in [4usize, 16, 64] {
            let frame_bytes = ops * per_op_bytes;
            let batched = m.batch_send_cost_ns(&profile, ops, frame_bytes);
            let unbatched = ops as u64 * m.send_cost_ns(&profile, per_op_bytes);
            assert!(
                batched < unbatched,
                "{ops} ops: batched {batched} !< unbatched {unbatched}"
            );
            let fixed_saving = ((ops - 1) as f64 * (m.mac_ns + m.net.directio_per_msg_ns)) as u64;
            assert!(
                unbatched - batched >= fixed_saving,
                "{ops} ops: saving {} < fixed saving {fixed_saving}",
                unbatched - batched
            );
        }
    }

    #[test]
    fn batch_recv_still_charges_application_work_per_op() {
        // Amortization covers the shield, not the application: receiving a
        // 16-op frame performs 16 ops' worth of app processing.
        let m = ProtocolCostModel::default();
        let profile = CostProfile::recipe();
        let ops = 16usize;
        let frame_bytes = ops * 256;
        let batched = m.batch_recv_cost_ns(&profile, ops, frame_bytes);
        let app_total = (ops as f64
            * profile.app_base_ns
            * m.tee_app_penalty
            * m.batch_epc_pressure(&profile, ops, frame_bytes)) as u64;
        assert!(
            batched >= app_total,
            "batched recv {batched} must include per-op app work {app_total}"
        );
        // And each extra op has a positive marginal cost (per-op dispatch).
        assert!(
            m.batch_send_cost_ns(&profile, ops + 1, frame_bytes)
                > m.batch_send_cost_ns(&profile, ops, frame_bytes)
        );
    }

    #[test]
    fn epc_pressure_is_evaluated_per_frame() {
        // A 64-op frame of 4 KiB values keeps 256 KiB enclave-resident per
        // frame: the pressure term must see whole frames, so batch_recv grows
        // past the EPC cliff for large values — the paper's §B.3 trade-off.
        let m = ProtocolCostModel::default();
        let profile = CostProfile::recipe();
        let small_frame = m.batch_epc_pressure(&profile, 16, 16 * 64);
        let big_frame = m.batch_epc_pressure(&profile, 64, 64 * 4096);
        assert_eq!(small_frame, 1.0);
        assert!(big_frame > 1.0);
        // Degenerate case matches the single-message pressure model.
        assert_eq!(
            m.batch_epc_pressure(&profile, 1, 4096),
            m.epc_pressure(&profile, 4096)
        );
        // Batching does not multiply the resident op population: a batched
        // frame of N small ops pressures no more than N single messages.
        assert!(
            m.batch_epc_pressure(&profile, 16, 16 * 256) <= m.epc_pressure(&profile, 256) * 1.01
        );
    }

    #[test]
    fn batch_ops_knob_round_trips() {
        let profile = CostProfile::recipe().with_batch_ops(16);
        assert_eq!(profile.batch_ops, 16);
        // Zero is clamped: "no batching" is 1 op per frame.
        assert_eq!(CostProfile::recipe().with_batch_ops(0).batch_ops, 1);
        assert_eq!(CostProfile::recipe().batch_ops, 1);
    }

    #[test]
    fn migration_costs_scale_with_chunk_size_and_pay_epc_pressure() {
        let m = ProtocolCostModel::default();
        let profile = CostProfile::recipe();
        // More entries and more bytes cost more, on both legs.
        assert!(
            m.snapshot_export_cost_ns(&profile, 256, 256 * 256)
                > m.snapshot_export_cost_ns(&profile, 64, 64 * 256)
        );
        assert!(
            m.snapshot_import_cost_ns(&profile, 256, 256 * 300)
                > m.snapshot_import_cost_ns(&profile, 64, 64 * 300)
        );
        // Import includes the frame's shield verification: costlier than the
        // pure store work of exporting the same records.
        assert!(
            m.snapshot_import_cost_ns(&profile, 64, 64 * 300)
                > m.snapshot_export_cost_ns(&profile, 64, 64 * 256) / 2
        );
        // A chunk small enough to fit the EPC stages at pressure 1.0; a
        // monolithic multi-megabyte snapshot crosses the cliff — the reason
        // the controller ships bounded chunks.
        assert_eq!(m.migration_epc_pressure(&profile, 64 * 1024), 1.0);
        assert!(m.migration_epc_pressure(&profile, 32 * 1024 * 1024) > 1.0);
        // Native nodes never pay EPC pressure.
        assert_eq!(
            m.migration_epc_pressure(&CostProfile::native_cft(), 1 << 30),
            1.0
        );
    }

    #[test]
    fn txn_costs_scale_with_ops_and_pay_epc_pressure_per_inflight_prepare() {
        let m = ProtocolCostModel::default();
        let profile = CostProfile::recipe();
        // More ops in a prepare cost more; the frame overhead is paid once.
        assert!(
            m.txn_prepare_cost_ns(&profile, 8, 8 * 256, 8 * 256)
                > m.txn_prepare_cost_ns(&profile, 2, 2 * 256, 2 * 256)
        );
        let eight = m.txn_prepare_cost_ns(&profile, 8, 8 * 256, 8 * 256);
        let singles = 8 * m.txn_prepare_cost_ns(&profile, 1, 256, 256);
        assert!(
            eight < singles,
            "prepare frame must amortize: {eight} !< {singles}"
        );
        // Many large in-flight prepares cross the EPC cliff: the same prepare
        // costs more when the store already stages megabytes.
        let calm = m.txn_prepare_cost_ns(&profile, 4, 1024, 4 * 1024);
        let pressured = m.txn_prepare_cost_ns(&profile, 4, 1024, 64 * 1024 * 1024);
        assert!(
            pressured > calm,
            "EPC pressure must surface: {pressured} !> {calm}"
        );
        assert!(m.txn_epc_pressure(&profile, 64 * 1024 * 1024) > 1.0);
        assert_eq!(m.txn_epc_pressure(&CostProfile::native_cft(), 1 << 30), 1.0);
        // Commits charge per staged write.
        assert!(
            m.txn_commit_cost_ns(&profile, 8, 8 * 256) > m.txn_commit_cost_ns(&profile, 1, 256)
        );
    }

    #[test]
    fn breakdowns_sum_exactly_to_their_cost_functions() {
        // The attribution invariant: every *_breakdown splits the *exact*
        // integer its *_cost_ns sibling charges — over every profile shape
        // and a spread of sizes, including EPC-pressured ones.
        let m = ProtocolCostModel::default();
        let profiles = [
            CostProfile::recipe(),
            CostProfile::recipe().confidential(),
            CostProfile::recipe().confidential().with_inflight(8192),
            CostProfile::native_cft(),
            CostProfile::pbft_baseline(),
            CostProfile::damysus_baseline(),
        ];
        for p in &profiles {
            for bytes in [0usize, 1, 63, 64, 256, 1024, 4096, 65_536] {
                assert_eq!(
                    m.send_breakdown(p, bytes).total(),
                    m.send_cost_ns(p, bytes),
                    "send {bytes}B"
                );
                assert_eq!(
                    m.recv_breakdown(p, bytes).total(),
                    m.recv_cost_ns(p, bytes),
                    "recv {bytes}B"
                );
                for ops in [1usize, 2, 16, 64] {
                    assert_eq!(
                        m.batch_send_breakdown(p, ops, bytes).total(),
                        m.batch_send_cost_ns(p, ops, bytes),
                        "batch_send {ops}x{bytes}B"
                    );
                    assert_eq!(
                        m.batch_recv_breakdown(p, ops, bytes).total(),
                        m.batch_recv_cost_ns(p, ops, bytes),
                        "batch_recv {ops}x{bytes}B"
                    );
                }
                for entries in [0usize, 1, 64, 256] {
                    assert_eq!(
                        m.snapshot_export_breakdown(p, entries, bytes).total(),
                        m.snapshot_export_cost_ns(p, entries, bytes),
                        "snap_export {entries}x{bytes}B"
                    );
                    assert_eq!(
                        m.snapshot_import_breakdown(p, entries, bytes).total(),
                        m.snapshot_import_cost_ns(p, entries, bytes),
                        "snap_import {entries}x{bytes}B"
                    );
                    assert_eq!(
                        m.recovery_breakdown(p, entries, bytes).total(),
                        m.recovery_cost_ns(p, entries, bytes),
                        "recovery {entries}x{bytes}B"
                    );
                    assert_eq!(
                        m.txn_prepare_breakdown(p, entries, bytes, 32 * 1024 * 1024)
                            .total(),
                        m.txn_prepare_cost_ns(p, entries, bytes, 32 * 1024 * 1024),
                        "txn_prepare {entries}x{bytes}B"
                    );
                    assert_eq!(
                        m.txn_commit_breakdown(p, entries, bytes).total(),
                        m.txn_commit_cost_ns(p, entries, bytes),
                        "txn_commit {entries}x{bytes}B"
                    );
                }
            }
        }
    }

    #[test]
    fn breakdown_categories_land_where_the_profile_says() {
        let m = ProtocolCostModel::default();
        // Plain native profile: transport + app only.
        let native = m.recv_breakdown(&CostProfile::native_cft(), 256);
        assert_eq!(native.get(CostCategory::CounterSlot), 0);
        assert_eq!(native.get(CostCategory::Mac), 0);
        assert_eq!(native.get(CostCategory::Aead), 0);
        assert_eq!(native.get(CostCategory::TeeExec), 0);
        assert_eq!(native.get(CostCategory::EpcPressure), 0);
        assert!(native.get(CostCategory::Transport) > 0);
        assert!(native.get(CostCategory::App) > 0);
        // Recipe: shield (counter slot + MAC bytes) and the TEE excess appear.
        let recipe = m.recv_breakdown(&CostProfile::recipe(), 256);
        assert!(recipe.get(CostCategory::CounterSlot) > 0);
        assert!(recipe.get(CostCategory::Mac) > 0);
        assert!(recipe.get(CostCategory::TeeExec) > 0);
        assert_eq!(recipe.get(CostCategory::Aead), 0);
        // Confidential adds AEAD proportional to the payload.
        let conf = m.recv_breakdown(&CostProfile::recipe().confidential(), 1024);
        assert!(conf.get(CostCategory::Aead) > 0);
        assert!(
            conf.get(CostCategory::Aead)
                > m.recv_breakdown(&CostProfile::recipe().confidential(), 64)
                    .get(CostCategory::Aead)
        );
        // Signature baselines pay the signature slot.
        assert!(
            m.recv_breakdown(&CostProfile::pbft_baseline(), 64)
                .get(CostCategory::Signature)
                > 0
        );
        // EPC pressure shows up for large pressured frames, never for native.
        let pressured = m.batch_recv_breakdown(&CostProfile::recipe(), 64, 64 * 4096);
        assert!(pressured.get(CostCategory::EpcPressure) > 0);
        let unpressured = m.batch_recv_breakdown(&CostProfile::native_cft(), 64, 64 * 4096);
        assert_eq!(unpressured.get(CostCategory::EpcPressure), 0);
        // Batch frames carry the per-op dispatch overhead.
        assert!(pressured.get(CostCategory::BatchOverhead) > 0);
    }

    #[test]
    fn damysus_sits_between_recipe_and_pbft() {
        let m = ProtocolCostModel::default();
        let recipe = m.recv_cost_ns(&CostProfile::recipe(), 256);
        let damysus = m.recv_cost_ns(&CostProfile::damysus_baseline(), 256);
        let pbft = m.recv_cost_ns(&CostProfile::pbft_baseline(), 256);
        assert!(recipe < damysus, "recipe={recipe} damysus={damysus}");
        assert!(damysus < pbft, "damysus={damysus} pbft={pbft}");
    }
}

//! The calibrated cost model that drives the simulator's virtual clock.
//!
//! Every unit of work a replica performs is converted into virtual nanoseconds:
//!
//! * **network send/receive** — delegated to [`recipe_net::NetCostModel`], so the
//!   protocol experiments and the Figure 6b network microbenchmark share one set of
//!   transport parameters;
//! * **authentication layer** — MAC computation/verification and counter handling
//!   per shielded message;
//! * **application processing** — request parsing, KV index work, queueing; scaled
//!   by the TEE execution penalty and by EPC pressure when values are large
//!   (Figure 3) — the [`recipe_tee::EpcModel`] supplies the pressure curve;
//! * **confidentiality** — an extra encrypt/decrypt pass over the payload
//!   (Figure 5);
//! * **baseline handicaps** — the PBFT baseline (BFT-Smart) runs over kernel
//!   sockets without direct I/O (paper Table 2) and carries a heavier per-message
//!   software stack, expressed as its own [`CostProfile`].
//!
//! Calibration targets the *relative* numbers the paper reports; EXPERIMENTS.md
//! records paper-vs-measured for every figure.

use recipe_net::{ExecMode, NetCostModel, Transport};
use recipe_tee::EpcModel;
use serde::{Deserialize, Serialize};

/// Per-node execution profile: where the node runs and which layers it pays for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostProfile {
    /// Native or TEE execution.
    pub exec: ExecMode,
    /// Kernel sockets or direct I/O.
    pub transport: Transport,
    /// Whether the Recipe authentication/non-equivocation layer is active.
    pub shielded: bool,
    /// Whether payloads/values are encrypted (confidential mode).
    pub confidential: bool,
    /// Whether this node verifies/produces asymmetric signatures per message
    /// (classical BFT baselines) instead of symmetric MACs.
    pub uses_signatures: bool,
    /// Fixed application-level processing cost per message, nanoseconds
    /// (request parsing, queue handling, index update).
    pub app_base_ns: f64,
    /// Usable EPC bytes for this node's enclave (drives the value-size cliff).
    pub epc_bytes: usize,
    /// Approximate enclave-resident working set in bytes *excluding* per-message
    /// payload buffers (index, metadata, protocol queues).
    pub resident_bytes: usize,
    /// Number of message payloads resident in enclave buffers at a time
    /// (batching factor; larger batches stress the EPC, §B.3).
    pub inflight_messages: usize,
}

impl CostProfile {
    /// A Recipe-transformed replica: TEE + direct I/O + authentication layer.
    pub fn recipe() -> Self {
        CostProfile {
            exec: ExecMode::Tee,
            transport: Transport::DirectIo,
            shielded: true,
            confidential: false,
            uses_signatures: false,
            app_base_ns: 550.0,
            epc_bytes: recipe_tee::epc::DEFAULT_EPC_BYTES,
            resident_bytes: 2 * 1024 * 1024,
            inflight_messages: 2_048,
        }
    }

    /// The same stack without the authentication layer and outside a TEE — the
    /// "native" baseline of Figure 6a.
    pub fn native_cft() -> Self {
        CostProfile {
            exec: ExecMode::Native,
            transport: Transport::DirectIo,
            shielded: false,
            confidential: false,
            uses_signatures: false,
            app_base_ns: 550.0,
            epc_bytes: usize::MAX / 2,
            resident_bytes: 0,
            inflight_messages: 0,
        }
    }

    /// The PBFT baseline (BFT-Smart): no TEE, kernel sockets, signature-based
    /// authentication, heavier per-message software stack (managed runtime,
    /// request batching pipeline).
    pub fn pbft_baseline() -> Self {
        CostProfile {
            exec: ExecMode::Native,
            transport: Transport::KernelSockets,
            shielded: false,
            confidential: false,
            uses_signatures: true,
            app_base_ns: 2_400.0,
            epc_bytes: usize::MAX / 2,
            resident_bytes: 0,
            inflight_messages: 0,
        }
    }

    /// The Damysus baseline: TEE-assisted streamlined HotStuff, kernel sockets
    /// (paper Table 2 marks hybrid BFT protocols as not using direct I/O).
    pub fn damysus_baseline() -> Self {
        CostProfile {
            exec: ExecMode::Tee,
            transport: Transport::KernelSockets,
            shielded: true,
            confidential: false,
            uses_signatures: false,
            app_base_ns: 1_100.0,
            epc_bytes: recipe_tee::epc::DEFAULT_EPC_BYTES,
            resident_bytes: 2 * 1024 * 1024,
            inflight_messages: 256,
        }
    }

    /// Enables confidential mode on this profile.
    pub fn confidential(mut self) -> Self {
        self.confidential = true;
        self
    }

    /// Sets the batching factor (in-flight payload buffers inside the enclave).
    pub fn with_inflight(mut self, messages: usize) -> Self {
        self.inflight_messages = messages;
        self
    }
}

/// The full protocol cost model: network parameters plus crypto/app constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolCostModel {
    /// Shared network cost parameters (also used by the Figure 6b bench).
    pub net: NetCostModel,
    /// Cost of a MAC computation or verification, nanoseconds (fixed part).
    pub mac_ns: f64,
    /// Per-byte cost of MAC/hash computation, nanoseconds.
    pub mac_per_byte_ns: f64,
    /// Cost of an asymmetric signature generation/verification, nanoseconds.
    pub signature_ns: f64,
    /// Per-byte cost of symmetric encryption (confidential mode), nanoseconds.
    pub encrypt_per_byte_ns: f64,
    /// Multiplier on application processing when executed inside a TEE
    /// (enclave transitions, shielded memory accesses).
    pub tee_app_penalty: f64,
    /// One-way network propagation delay between any two nodes, nanoseconds
    /// (same-rack datacenter fabric).
    pub link_latency_ns: u64,
    /// Time a client waits between receiving a reply and issuing its next request.
    pub client_think_ns: u64,
}

impl Default for ProtocolCostModel {
    fn default() -> Self {
        ProtocolCostModel {
            net: NetCostModel::default(),
            mac_ns: 380.0,
            mac_per_byte_ns: 0.45,
            signature_ns: 14_000.0,
            encrypt_per_byte_ns: 1.1,
            tee_app_penalty: 2.6,
            link_latency_ns: 5_000,
            client_think_ns: 1_000,
        }
    }
}

impl ProtocolCostModel {
    /// Cost for a node with `profile` to send one message of `payload_bytes`.
    pub fn send_cost_ns(&self, profile: &CostProfile, payload_bytes: usize) -> u64 {
        self.message_cost_ns(profile, payload_bytes)
    }

    /// Cost for a node with `profile` to receive and fully process one message of
    /// `payload_bytes` (transport + authentication + application work).
    pub fn recv_cost_ns(&self, profile: &CostProfile, payload_bytes: usize) -> u64 {
        self.message_cost_ns(profile, payload_bytes) + self.app_cost_ns(profile, payload_bytes)
    }

    /// Application-only processing cost (no transport), e.g. applying a committed
    /// write to the local KV store.
    pub fn app_cost_ns(&self, profile: &CostProfile, payload_bytes: usize) -> u64 {
        let tee_mult = match profile.exec {
            ExecMode::Native => 1.0,
            ExecMode::Tee => self.tee_app_penalty,
        };
        let pressure = self.epc_pressure(profile, payload_bytes);
        (profile.app_base_ns * tee_mult * pressure) as u64
    }

    /// EPC paging pressure factor for this node, given the payload size of the
    /// messages it is currently handling.
    pub fn epc_pressure(&self, profile: &CostProfile, payload_bytes: usize) -> f64 {
        if profile.exec == ExecMode::Native {
            return 1.0;
        }
        let mut epc = EpcModel::new(profile.epc_bytes);
        let resident = profile.resident_bytes + profile.inflight_messages * payload_bytes;
        let _ = epc.allocate(resident);
        epc.pressure_factor()
    }

    fn message_cost_ns(&self, profile: &CostProfile, payload_bytes: usize) -> u64 {
        let mut cost = self
            .net
            .message_cost_ns(profile.transport, profile.exec, payload_bytes);
        if profile.shielded {
            cost += self.mac_ns + payload_bytes as f64 * self.mac_per_byte_ns;
        }
        if profile.uses_signatures {
            cost += self.signature_ns;
        }
        if profile.confidential {
            cost += payload_bytes as f64 * self.encrypt_per_byte_ns;
        }
        cost as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipe_profile_is_cheaper_per_message_than_pbft() {
        let m = ProtocolCostModel::default();
        let recipe = m.recv_cost_ns(&CostProfile::recipe(), 256);
        let pbft = m.recv_cost_ns(&CostProfile::pbft_baseline(), 256);
        assert!(
            pbft > recipe,
            "PBFT per-message cost ({pbft}) should exceed Recipe's ({recipe})"
        );
    }

    #[test]
    fn native_cft_is_cheaper_than_recipe() {
        // Figure 6a: the transformation + TEE costs something (2x-15x end to end).
        let m = ProtocolCostModel::default();
        let native = m.recv_cost_ns(&CostProfile::native_cft(), 256);
        let recipe = m.recv_cost_ns(&CostProfile::recipe(), 256);
        let ratio = recipe as f64 / native as f64;
        assert!(ratio > 1.5, "ratio was {ratio:.2}");
        assert!(ratio < 20.0, "ratio was {ratio:.2}");
    }

    #[test]
    fn confidentiality_adds_cost_proportional_to_payload() {
        let m = ProtocolCostModel::default();
        let plain = m.recv_cost_ns(&CostProfile::recipe(), 1024);
        let conf = m.recv_cost_ns(&CostProfile::recipe().confidential(), 1024);
        assert!(conf > plain);
        let plain_small = m.recv_cost_ns(&CostProfile::recipe(), 64);
        let conf_small = m.recv_cost_ns(&CostProfile::recipe().confidential(), 64);
        assert!(conf - plain > conf_small - plain_small);
    }

    #[test]
    fn epc_pressure_kicks_in_for_large_values() {
        let m = ProtocolCostModel::default();
        let profile = CostProfile::recipe();
        let small = m.epc_pressure(&profile, 256);
        let large = m.epc_pressure(&profile, 4096);
        assert_eq!(small, 1.0);
        assert!(
            large > 1.0,
            "4 KiB payloads with batching should exceed the EPC"
        );
        // Reducing the batching factor relieves the pressure (the paper's mitigation
        // for 4 KiB values, §B.3).
        let little_batching = m.epc_pressure(&profile.clone().with_inflight(4), 4096);
        assert!(little_batching < large);
        // Native execution never pays EPC pressure.
        assert_eq!(m.epc_pressure(&CostProfile::native_cft(), 1 << 20), 1.0);
    }

    #[test]
    fn signature_baselines_pay_per_message() {
        let m = ProtocolCostModel::default();
        let mut signing = CostProfile::native_cft();
        signing.uses_signatures = true;
        assert!(
            m.recv_cost_ns(&signing, 64) as f64
                >= m.recv_cost_ns(&CostProfile::native_cft(), 64) as f64 + m.signature_ns * 0.9
        );
    }

    #[test]
    fn costs_scale_with_payload_size() {
        let m = ProtocolCostModel::default();
        let p = CostProfile::recipe();
        assert!(m.recv_cost_ns(&p, 4096) > m.recv_cost_ns(&p, 256));
        assert!(m.send_cost_ns(&p, 4096) > m.send_cost_ns(&p, 256));
    }

    #[test]
    fn damysus_sits_between_recipe_and_pbft() {
        let m = ProtocolCostModel::default();
        let recipe = m.recv_cost_ns(&CostProfile::recipe(), 256);
        let damysus = m.recv_cost_ns(&CostProfile::damysus_baseline(), 256);
        let pbft = m.recv_cost_ns(&CostProfile::pbft_baseline(), 256);
        assert!(recipe < damysus, "recipe={recipe} damysus={damysus}");
        assert!(damysus < pbft, "damysus={damysus} pbft={pbft}");
    }
}

//! The replica interface the simulator drives.
//!
//! A protocol implementation (R-Raft, R-CR, R-ABD, R-AllConcur, PBFT, Damysus, …) is
//! a deterministic state machine implementing [`Replica`]. The simulator calls into
//! it for client requests, peer messages and timers; the replica communicates back
//! through the [`Ctx`] it is handed — queuing outbound messages, client replies and
//! timer requests that the simulator then schedules with the appropriate virtual-time
//! costs.

use recipe_core::{ClientReply, ClientRequest, Operation};
use recipe_net::NodeId;
use recipe_tee::TrustedInstant;
use serde::{Deserialize, Serialize};

/// The effects a handler invocation queued: outbound `(dst, bytes, ops)`
/// messages (`ops` > 1 for batch frames, so the cost model can charge fixed
/// per-frame overhead once and per-op marginal work per op), client replies,
/// and `(delay_ns, token)` timer requests.
pub(crate) type Effects = (
    Vec<(NodeId, Vec<u8>, u32)>,
    Vec<ClientReply>,
    Vec<(u64, u64)>,
);

/// The per-invocation context a replica uses to interact with the world.
#[derive(Debug)]
pub struct Ctx {
    now: TrustedInstant,
    node: NodeId,
    outbox: Vec<(NodeId, Vec<u8>, u32)>,
    replies: Vec<ClientReply>,
    timers: Vec<(u64, u64)>,
}

impl Ctx {
    /// Creates a context for a handler invocation at virtual time `now`.
    pub(crate) fn new(node: NodeId, now: TrustedInstant) -> Self {
        Ctx {
            now,
            node,
            outbox: Vec::new(),
            replies: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> TrustedInstant {
        self.now
    }

    /// The node this context belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Queues `bytes` for delivery to `dst`.
    pub fn send(&mut self, dst: NodeId, bytes: Vec<u8>) {
        self.outbox.push((dst, bytes, 1));
    }

    /// Queues a batch frame of `ops` protocol messages for delivery to `dst`.
    /// The simulator charges the frame's fixed transport/auth cost once and the
    /// per-op marginal cost `ops` times (see
    /// `ProtocolCostModel::batch_send_cost_ns`).
    pub fn send_batch(&mut self, dst: NodeId, bytes: Vec<u8>, ops: u32) {
        self.outbox.push((dst, bytes, ops.max(1)));
    }

    /// Queues `bytes` for delivery to every node in `peers`.
    pub fn broadcast(&mut self, peers: &[NodeId], bytes: Vec<u8>) {
        for &peer in peers {
            if peer != self.node {
                self.outbox.push((peer, bytes.clone(), 1));
            }
        }
    }

    /// Queues a reply to a client.
    pub fn reply(&mut self, reply: ClientReply) {
        self.replies.push(reply);
    }

    /// Requests a timer callback `delay_ns` from now, tagged with `token`.
    pub fn set_timer(&mut self, delay_ns: u64, token: u64) {
        self.timers.push((delay_ns, token));
    }

    /// Drains the queued effects (used by the simulator).
    pub(crate) fn take_effects(self) -> Effects {
        (self.outbox, self.replies, self.timers)
    }

    /// Number of messages queued so far (useful in tests).
    pub fn queued_messages(&self) -> usize {
        self.outbox.len()
    }
}

/// A participant's answer to a two-phase-commit prepare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnVote {
    /// Every touched key was locked and every write staged; the participant
    /// is ready to commit.
    Granted,
    /// A touched key is locked by another in-flight transaction; nothing was
    /// locked or staged (all-or-nothing), the coordinator must abort.
    Conflict {
        /// The first conflicting key.
        key: Vec<u8>,
    },
    /// The replica type does not implement transaction participation (the
    /// default) — routing a [`recipe_core::Request::Txn`] at such a group is
    /// a deployment bug, which coordinators surface loudly.
    Unsupported,
}

/// What a restarting replica salvaged while rehydrating rollback-protected
/// state: entries that passed the store's verified-read path (sealed value +
/// trusted counter check) versus entries discarded because verification
/// failed. The simulator charges the re-verification work on the virtual
/// clock and attributes it to `charge.recovery_ns`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestartReport {
    /// Entries that passed verification and were kept.
    pub verified_entries: u64,
    /// Entries discarded because the sealed value failed verification.
    pub discarded_entries: u64,
    /// Total key+value bytes re-verified (drives the MAC cost of rehydration).
    pub payload_bytes: u64,
}

/// One exported prepare record's operations, in the wire form
/// [`Replica::txn_import_record`] expects: lock keys as valueless (`None`)
/// entries first, then the staged writes in order.
pub type TxnRecordOps = Vec<(Vec<u8>, Option<Vec<u8>>)>;

/// A deterministic protocol replica.
///
/// The three `txn_*` hooks are the participant side of cross-shard two-phase
/// commit, driven by the sharded coordinator on the group's write
/// coordinator: `txn_prepare` locks the touched keys in the replica's store
/// and stages the writes, `txn_commit` applies them through the replica's
/// normal apply path and returns the applied records (the coordinator
/// installs them on the group's other replicas, mirroring how migration
/// state transfer installs imported ranges), `txn_abort` discards them.
/// The default implementations vote [`TxnVote::Unsupported`] — protocols opt
/// in by overriding (R-Raft, R-CR, R-ABD and PBFT do).
pub trait Replica {
    /// This replica's node id.
    fn id(&self) -> NodeId;

    /// Handles a client request routed to this replica (it was selected as the
    /// operation's coordinator).
    fn on_client_request(&mut self, request: ClientRequest, ctx: &mut Ctx);

    /// Handles a message from peer `from`. `bytes` is whatever a peer passed to
    /// [`Ctx::send`] — for Recipe-transformed protocols, a serialized
    /// [`recipe_core::ShieldedMessage`].
    fn on_message(&mut self, from: NodeId, bytes: &[u8], ctx: &mut Ctx);

    /// Handles a timer previously requested through [`Ctx::set_timer`].
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx);

    /// True if this replica can act as the coordinator for write operations.
    fn coordinates_writes(&self) -> bool;

    /// True if this replica can act as the coordinator for read operations.
    fn coordinates_reads(&self) -> bool;

    /// Protocol name, used in experiment output.
    fn protocol_name(&self) -> &'static str;

    /// 2PC prepare: lock every key `ops` touches in the local store and stage
    /// the writes, all-or-nothing. Called on the group's write coordinator.
    fn txn_prepare(&mut self, txn_id: u64, ops: &[Operation]) -> TxnVote {
        let _ = (txn_id, ops);
        TxnVote::Unsupported
    }

    /// 2PC commit: apply `txn_id`'s staged writes through the replica's
    /// normal apply path, release its locks, and return the applied records
    /// (key, value, stored write timestamp) for installation on the group's
    /// other replicas. Unknown transactions return an empty list (idempotent
    /// re-commit).
    fn txn_commit(&mut self, txn_id: u64) -> Vec<RangeEntry> {
        let _ = txn_id;
        Vec::new()
    }

    /// 2PC abort: discard `txn_id`'s staged writes and release its locks.
    fn txn_abort(&mut self, txn_id: u64) {
        let _ = txn_id;
    }

    /// Records a prepare record replicated from the participant group's
    /// leader: passive (no locks) until adopted on failover. The
    /// coordinator's prepare phase already pays the group replication round
    /// trip in the cost model; this hook is the state that round trip
    /// carries. Default: not a participant, nothing to record.
    fn txn_stage_replicated(&mut self, txn_id: u64, ops: &[Operation]) {
        let _ = (txn_id, ops);
    }

    /// Discards the replicated prepare record for `txn_id` once the
    /// coordinator's decision reached this follower (committed entries then
    /// arrive through the import path; aborts just drop the record).
    fn txn_drop_replicated(&mut self, txn_id: u64) {
        let _ = txn_id;
    }

    /// Failover adoption: promotes every replicated prepare record this
    /// replica holds into a real staged transaction with locks, returning
    /// the adopted transaction ids. Called when this replica becomes the
    /// group's write coordinator, so in-flight transactions prepared on a
    /// crashed leader resolve through the coordinator's normal commit/abort
    /// frames instead of being lost. Default: nothing to adopt.
    fn txn_adopt_replicated(&mut self) -> Vec<u64> {
        Vec::new()
    }

    /// Exports every prepare record this replica knows (its own staged
    /// transactions and passive replicated copies) in the replicated wire
    /// form `(txn_id, [(key, staged write)])`. A recovering group member
    /// imports these via [`Replica::txn_import_record`], so a node that
    /// later re-wins coordinatorship can adopt the full in-flight set —
    /// its own pre-crash staging was volatile enclave state.
    fn txn_export_records(&mut self) -> Vec<(u64, TxnRecordOps)> {
        Vec::new()
    }

    /// Imports one prepare record exported by a live peer during recovery,
    /// as a passive (lock-free) replicated copy.
    fn txn_import_record(&mut self, txn_id: u64, ops: &[(Vec<u8>, Option<Vec<u8>>)]) {
        let _ = (txn_id, ops);
    }

    /// Telemetry snapshot of the replica's shield/batcher counters, if the
    /// protocol keeps any. The simulator folds these into the attached
    /// telemetry at export time; `None` (the default) contributes nothing.
    fn protocol_counters(&self) -> Option<recipe_telemetry::ProtocolCounters> {
        None
    }

    // ------------------------------------------------------------------
    // Crash–recovery hooks. All default to no-ops so protocols without a
    // crash–recovery story keep compiling (and crash-free runs stay
    // bit-identical — none of these is called unless a node actually
    // crashes or recovers).
    // ------------------------------------------------------------------

    /// The view/configuration number this replica currently operates in.
    /// View-less protocols (R-ABD, R-AllConcur) keep the default `0`.
    fn current_view(&self) -> u64 {
        0
    }

    /// The trusted send counter toward `peer` — how many frames this node has
    /// sealed on the `self → peer` channel. Read by the simulator acting as
    /// the attestation service while re-attesting a restarted peer.
    fn channel_send_counter(&self, peer: NodeId) -> u64 {
        let _ = peer;
        0
    }

    /// Re-attestation channel resync: fast-forward the receive counter for
    /// `peer → self` to `peer_send_counter` (frames sealed earlier are
    /// rejected as replays afterwards — stale traffic cannot reach a
    /// recovering replica) and drop any buffered future frames from `peer`.
    fn resync_channel_from(&mut self, peer: NodeId, peer_send_counter: u64) {
        let _ = (peer, peer_send_counter);
    }

    /// Exports this replica's full verified state for a recovering peer (the
    /// §3.7 "state snapshot of the current epoch"). The attestation service
    /// asks the first live peer; `None` (the default, and the outcome when a
    /// record fails verification) means the joiner restarts from its own
    /// sealed state only.
    fn export_recovery_snapshot(&mut self) -> Option<Vec<RangeEntry>> {
        None
    }

    /// Restart after a crash, rollback-protected: drop all volatile protocol
    /// state, adopt `view` (the view the attestation service observed among
    /// live peers), rehydrate from sealed storage only — re-verifying every
    /// host-resident record and discarding what fails — then apply
    /// `snapshot` (a live peer's verified state, see
    /// [`Replica::export_recovery_snapshot`]) so writes committed while the
    /// node slept are caught up before it serves anything. Returns what was
    /// salvaged so the simulator can charge the re-verification work.
    fn on_restart(
        &mut self,
        view: u64,
        snapshot: Option<Vec<RangeEntry>>,
        ctx: &mut Ctx,
    ) -> RestartReport {
        let _ = (view, snapshot, ctx);
        RestartReport::default()
    }

    /// Deterministic failure notice from the trusted configuration service:
    /// `peer` has been observed crashed. Protocols with a static topology
    /// (R-CR's chain, PBFT's primary) reconfigure around the dead node here;
    /// protocols with their own failure detector (R-Raft) can ignore it.
    fn on_peer_down(&mut self, peer: NodeId, ctx: &mut Ctx) {
        let _ = (peer, ctx);
    }

    /// Deterministic recovery notice from the trusted configuration service:
    /// `peer` has been re-attested and rejoined. Inverse of
    /// [`Replica::on_peer_down`].
    fn on_peer_up(&mut self, peer: NodeId, ctx: &mut Ctx) {
        let _ = (peer, ctx);
    }
}

/// One exported key-value record of a state-transfer range: the unit shipped
/// by snapshot and catch-up chunks during an online shard migration. The
/// `(ts_logical, ts_node)` pair carries the store's write timestamp opaquely —
/// the simulator never interprets it; importing replicas hand it back to their
/// store so timestamp-ordered protocols (R-ABD) keep their write rule intact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeEntry {
    /// The key.
    pub key: Vec<u8>,
    /// The (plaintext) value as committed on the exporting replica.
    pub value: Vec<u8>,
    /// Logical half of the write timestamp stored for the key.
    pub ts_logical: u64,
    /// Node half (tiebreaker) of the write timestamp stored for the key.
    pub ts_node: u64,
}

impl RangeEntry {
    /// Bytes this entry contributes to a transfer chunk (key + value payload).
    pub fn payload_len(&self) -> usize {
        self.key.len() + self.value.len()
    }
}

/// Key-range state transfer: the replica-side hooks an online shard migration
/// drives (see `recipe-shard`'s migration controller). A migration exports the
/// moving range from the donor group's coordinator, ships it through the
/// shield layer, imports it into every replica of the recipient group, and
/// evicts it from the donor after cutover.
///
/// Implementations operate on the replica's local store only — no protocol
/// messages, no counters. The controller owns ordering: imports are applied
/// snapshot-first then catch-up in commit order, and the donor stops serving
/// the range before eviction.
pub trait RangeStateTransfer: Replica {
    /// Exports every key the local store holds that satisfies `filter`, in
    /// key order. Fails when a record does not pass the store's verified-read
    /// path (a Byzantine host corrupted or dropped host-resident state) — the
    /// caller must abort the transfer, never ship unverified state.
    fn export_range(&mut self, filter: &dyn Fn(&[u8]) -> bool) -> Result<Vec<RangeEntry>, String>;

    /// Reads one key through the verified path, returning its current value
    /// and **real stored write timestamp** (catch-up capture uses this so
    /// timestamp-ordered stores keep their write rule across the move).
    /// `Ok(None)` when the key is absent; `Err` when it fails verification.
    fn read_entry(&mut self, key: &[u8]) -> Result<Option<RangeEntry>, String>;

    /// Imports entries into the local store, in the order given (later entries
    /// overwrite earlier ones for the same key).
    fn import_range(&mut self, entries: &[RangeEntry]);

    /// Removes every key satisfying `filter` from the local store, returning
    /// how many were evicted.
    fn evict_range(&mut self, filter: &dyn Fn(&[u8]) -> bool) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_queues_effects() {
        let mut ctx = Ctx::new(NodeId(1), TrustedInstant::from_millis(5));
        assert_eq!(ctx.node(), NodeId(1));
        assert_eq!(ctx.now(), TrustedInstant::from_millis(5));

        ctx.send(NodeId(2), vec![1, 2]);
        ctx.broadcast(&[NodeId(0), NodeId(1), NodeId(2)], vec![9]);
        ctx.send_batch(NodeId(0), vec![7], 16);
        ctx.reply(ClientReply {
            client_id: 4,
            request_id: 1,
            value: None,
            found: false,
            replier: 1,
        });
        ctx.set_timer(1_000, 7);
        assert_eq!(ctx.queued_messages(), 4); // broadcast skips self

        let (outbox, replies, timers) = ctx.take_effects();
        assert_eq!(outbox.len(), 4);
        assert_eq!(outbox[0], (NodeId(2), vec![1, 2], 1));
        assert_eq!(outbox[3], (NodeId(0), vec![7], 16));
        assert!(outbox.iter().all(|(dst, _, _)| *dst != NodeId(1)));
        assert_eq!(replies.len(), 1);
        assert_eq!(timers, vec![(1_000, 7)]);
    }
}

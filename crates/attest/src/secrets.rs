//! Secrets and configuration provisioned to attested replicas.
//!
//! After a successful attestation the challenger provisions (paper §3.6, A.7–A.8):
//! the node's signing-key seed, one MAC key per communication channel, the
//! value-encryption key (confidential mode), and the membership configuration. The
//! bundle travels encrypted under the key derived from the attestation-time
//! Diffie-Hellman exchange, so only the attested enclave can open it.

use std::collections::BTreeMap;

use recipe_crypto::{Cipher, Ciphertext, MacKey, Nonce, SharedSecret};
use serde::{Deserialize, Serialize};

use crate::error::AttestError;

/// Static cluster configuration distributed to every attested replica.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Ids of all replicas in the membership, in ascending order.
    pub members: BTreeMap<u64, String>,
    /// Number of faults the deployment is sized to tolerate (N ≥ 2f + 1).
    pub fault_threshold: usize,
    /// Code identity every replica must attest to.
    pub code_identity: String,
    /// Whether the deployment runs in confidential mode.
    pub confidential: bool,
}

impl ClusterConfig {
    /// Builds a configuration for `n` replicas named `replica-<id>` tolerating `f`
    /// faults.
    pub fn for_replicas(n: usize, f: usize, code_identity: impl Into<String>) -> Self {
        let members = (0..n as u64)
            .map(|id| (id, format!("replica-{id}")))
            .collect();
        ClusterConfig {
            members,
            fault_threshold: f,
            code_identity: code_identity.into(),
            confidential: false,
        }
    }

    /// Enables confidential mode.
    pub fn confidential(mut self) -> Self {
        self.confidential = true;
        self
    }

    /// Number of replicas in the membership.
    pub fn n(&self) -> usize {
        self.members.len()
    }

    /// Quorum size (majority of the membership).
    pub fn quorum(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// True if `node_id` belongs to the membership.
    pub fn contains(&self, node_id: u64) -> bool {
        self.members.contains_key(&node_id)
    }

    /// True if the membership satisfies N ≥ 2f + 1.
    pub fn is_well_formed(&self) -> bool {
        self.members.len() > 2 * self.fault_threshold
    }
}

/// Everything a replica needs to participate, produced by the protocol designer /
/// CAS for one specific node.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretBundle {
    /// The node this bundle is intended for.
    pub node_id: u64,
    /// Seed of the node's Ed25519 signing key (32 bytes).
    pub signing_seed: Vec<u8>,
    /// Per-channel MAC keys: `channel label → key`. Labels follow
    /// `recipe_net::ChannelId::label()` (`cq:<src>-><dst>`).
    pub channel_keys: BTreeMap<String, MacKey>,
    /// Value/message encryption key for confidential mode (32 bytes), if enabled.
    pub cipher_key: Option<Vec<u8>>,
    /// Cluster configuration.
    pub config: ClusterConfig,
}

impl SecretBundle {
    /// Serializes and encrypts the bundle under the attestation shared secret.
    pub fn seal(&self, shared: &SharedSecret) -> Ciphertext {
        let cipher = Cipher::new(&shared.derive_cipher_key("recipe.attest.provisioning"));
        // recipe-lint: allow(unwrap-in-lib, reason = "serializing the self-owned bundle cannot fail")
        let plaintext = serde_json::to_vec(self).expect("bundle serializes");
        cipher.seal(Nonce::from_view_counter(0xA77E, self.node_id), &plaintext)
    }

    /// Decrypts and parses a bundle inside the attested enclave.
    pub fn open(shared: &SharedSecret, sealed: &Ciphertext) -> Result<SecretBundle, AttestError> {
        let cipher = Cipher::new(&shared.derive_cipher_key("recipe.attest.provisioning"));
        let plaintext = cipher
            .open(sealed)
            .map_err(|_| AttestError::ProvisioningFailed)?;
        serde_json::from_slice(&plaintext).map_err(|_| AttestError::ProvisioningFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use recipe_crypto::EphemeralSecret;

    fn bundle() -> SecretBundle {
        let mut channel_keys = BTreeMap::new();
        channel_keys.insert("cq:0->1".to_owned(), MacKey::from_bytes([1u8; 32]));
        channel_keys.insert("cq:1->0".to_owned(), MacKey::from_bytes([2u8; 32]));
        SecretBundle {
            node_id: 1,
            signing_seed: vec![7u8; 32],
            channel_keys,
            cipher_key: Some(vec![9u8; 32]),
            config: ClusterConfig::for_replicas(3, 1, "raft-replica-v1"),
        }
    }

    fn shared_pair() -> (SharedSecret, SharedSecret) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = EphemeralSecret::generate(&mut rng);
        let b = EphemeralSecret::generate(&mut rng);
        (a.derive_shared(&b.public()), b.derive_shared(&a.public()))
    }

    #[test]
    fn cluster_config_quorum_and_membership() {
        let config = ClusterConfig::for_replicas(3, 1, "code");
        assert_eq!(config.n(), 3);
        assert_eq!(config.quorum(), 2);
        assert!(config.contains(0));
        assert!(config.contains(2));
        assert!(!config.contains(3));
        assert!(config.is_well_formed());
        assert!(!config.confidential);
        assert!(config.clone().confidential().confidential);

        let undersized = ClusterConfig::for_replicas(2, 1, "code");
        assert!(!undersized.is_well_formed());
    }

    #[test]
    fn five_replica_quorum() {
        let config = ClusterConfig::for_replicas(5, 2, "code");
        assert_eq!(config.quorum(), 3);
        assert!(config.is_well_formed());
    }

    #[test]
    fn bundle_seal_open_roundtrip() {
        let (challenger_side, enclave_side) = shared_pair();
        let sealed = bundle().seal(&challenger_side);
        let opened = SecretBundle::open(&enclave_side, &sealed).unwrap();
        assert_eq!(opened, bundle());
    }

    #[test]
    fn bundle_cannot_be_opened_with_wrong_secret() {
        let (challenger_side, _) = shared_pair();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let eavesdropper = EphemeralSecret::generate(&mut rng);
        let other = eavesdropper.derive_shared(&EphemeralSecret::generate(&mut rng).public());
        let sealed = bundle().seal(&challenger_side);
        assert_eq!(
            SecretBundle::open(&other, &sealed),
            Err(AttestError::ProvisioningFailed)
        );
    }

    #[test]
    fn tampered_bundle_is_rejected() {
        let (challenger_side, enclave_side) = shared_pair();
        let mut sealed = bundle().seal(&challenger_side);
        let idx = sealed.bytes.len() / 2;
        sealed.bytes[idx] ^= 0xFF;
        assert_eq!(
            SecretBundle::open(&enclave_side, &sealed),
            Err(AttestError::ProvisioningFailed)
        );
    }
}

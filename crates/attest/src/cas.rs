//! The Configuration and Attestation Service (CAS).
//!
//! The CAS is deployed by the protocol designer inside the same datacenter as the
//! replicas (itself running in a TEE and attested once against the vendor's service).
//! Afterwards it verifies replica quotes locally, avoiding the wide-area round trip
//! to the vendor — the source of the ≈18× latency advantage reported in Table 4.
//!
//! Besides verification, the CAS stores the secrets and configurations uploaded by
//! the protocol designer and hands the per-node [`crate::secrets::SecretBundle`] to
//! replicas that attest successfully.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recipe_crypto::{Nonce, PublicKey};
use recipe_tee::{Measurement, Quote};

use crate::error::AttestError;
use crate::secrets::SecretBundle;
use crate::verifier::QuoteVerifier;

/// Mean verification latency of the datacenter-local CAS (paper Table 4: 0.169 s).
pub const CAS_MEAN_LATENCY_NS: u64 = 169_000_000;
/// Latency jitter applied around the mean (± this fraction).
const LATENCY_JITTER: f64 = 0.15;

/// The Recipe Configuration and Attestation Service.
pub struct ConfigAndAttestService {
    /// Platform vendor keys the CAS trusts, by platform id.
    vendor_keys: HashMap<u64, PublicKey>,
    /// Per-node secret bundles uploaded by the protocol designer.
    bundles: HashMap<u64, SecretBundle>,
    /// Node ids that have attested successfully.
    attested: Vec<u64>,
    rng: StdRng,
    mean_latency_ns: u64,
}

impl ConfigAndAttestService {
    /// Creates a CAS trusting the given `(platform_id, vendor_key)` pairs.
    pub fn new(vendor_keys: Vec<(u64, PublicKey)>, seed: u64) -> Self {
        ConfigAndAttestService {
            vendor_keys: vendor_keys.into_iter().collect(),
            bundles: HashMap::new(),
            attested: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            mean_latency_ns: CAS_MEAN_LATENCY_NS,
        }
    }

    /// Overrides the mean verification latency (used by calibration tests).
    pub fn with_mean_latency_ns(mut self, latency_ns: u64) -> Self {
        self.mean_latency_ns = latency_ns;
        self
    }

    /// Registers another trusted platform.
    pub fn register_platform(&mut self, platform_id: u64, vendor_key: PublicKey) {
        self.vendor_keys.insert(platform_id, vendor_key);
    }

    /// The protocol designer uploads the secret bundle destined for `node_id`.
    pub fn upload_bundle(&mut self, bundle: SecretBundle) {
        self.bundles.insert(bundle.node_id, bundle);
    }

    /// Returns the bundle for `node_id` if (and only if) that node has attested
    /// successfully.
    pub fn bundle_for(&self, node_id: u64) -> Result<&SecretBundle, AttestError> {
        if !self.attested.contains(&node_id) {
            return Err(AttestError::QuoteRejected {
                reason: format!("node {node_id} has not attested"),
            });
        }
        self.bundles
            .get(&node_id)
            .ok_or(AttestError::NotInMembership { node_id })
    }

    /// Records that `node_id` attested successfully (called by the attestation
    /// protocol driver after [`QuoteVerifier::verify_quote`] succeeds).
    pub fn mark_attested(&mut self, node_id: u64) {
        if !self.attested.contains(&node_id) {
            self.attested.push(node_id);
        }
    }

    /// Nodes that have attested successfully so far.
    pub fn attested_nodes(&self) -> &[u64] {
        &self.attested
    }

    fn sample(&mut self, mean: u64) -> u64 {
        let jitter = self.rng.gen_range(-LATENCY_JITTER..=LATENCY_JITTER);
        ((mean as f64) * (1.0 + jitter)) as u64
    }
}

impl QuoteVerifier for ConfigAndAttestService {
    fn verify_quote(
        &self,
        quote: &Quote,
        expected_measurement: &Measurement,
        nonce: &Nonce,
    ) -> Result<(), AttestError> {
        let vendor_key =
            self.vendor_keys
                .get(&quote.platform_id)
                .ok_or(AttestError::UnknownPlatform {
                    platform_id: quote.platform_id,
                })?;
        quote
            .verify(vendor_key, expected_measurement, nonce)
            .map(|_| ())
            .map_err(|err| AttestError::QuoteRejected {
                reason: err.to_string(),
            })
    }

    fn sample_latency_ns(&mut self) -> u64 {
        let mean = self.mean_latency_ns;
        self.sample(mean)
    }

    fn name(&self) -> &'static str {
        "Recipe CAS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secrets::ClusterConfig;
    use rand::SeedableRng;
    use recipe_tee::{Enclave, EnclaveConfig, EnclaveId};
    use std::collections::BTreeMap;

    fn attested_quote(code: &str, platform: u64) -> (Enclave, Quote, Nonce) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut enclave = Enclave::launch(EnclaveId(1), EnclaveConfig::new(code, platform));
        let nonce = Nonce::from_u128(11);
        let report = enclave.attest(nonce, &mut rng).unwrap();
        let quote = enclave.generate_quote(report).unwrap();
        (enclave, quote, nonce)
    }

    fn bundle(node_id: u64) -> SecretBundle {
        SecretBundle {
            node_id,
            signing_seed: vec![1u8; 32],
            channel_keys: BTreeMap::new(),
            cipher_key: None,
            config: ClusterConfig::for_replicas(3, 1, "code-v1"),
        }
    }

    #[test]
    fn accepts_valid_quotes_from_registered_platforms() {
        let (enclave, quote, nonce) = attested_quote("code-v1", 10);
        let cas = ConfigAndAttestService::new(vec![(10, enclave.platform_vendor_key())], 1);
        assert!(cas
            .verify_quote(&quote, &Measurement::of_code("code-v1"), &nonce)
            .is_ok());
    }

    #[test]
    fn rejects_unknown_platforms() {
        let (_, quote, nonce) = attested_quote("code-v1", 10);
        let cas = ConfigAndAttestService::new(vec![], 1);
        assert_eq!(
            cas.verify_quote(&quote, &Measurement::of_code("code-v1"), &nonce),
            Err(AttestError::UnknownPlatform { platform_id: 10 })
        );
    }

    #[test]
    fn rejects_wrong_measurement() {
        let (enclave, quote, nonce) = attested_quote("malicious-code", 10);
        let cas = ConfigAndAttestService::new(vec![(10, enclave.platform_vendor_key())], 1);
        assert!(matches!(
            cas.verify_quote(&quote, &Measurement::of_code("code-v1"), &nonce),
            Err(AttestError::QuoteRejected { .. })
        ));
    }

    #[test]
    fn bundles_are_released_only_after_attestation() {
        let mut cas = ConfigAndAttestService::new(vec![], 1);
        cas.upload_bundle(bundle(3));
        assert!(matches!(
            cas.bundle_for(3),
            Err(AttestError::QuoteRejected { .. })
        ));
        cas.mark_attested(3);
        assert_eq!(cas.bundle_for(3).unwrap().node_id, 3);
        assert_eq!(cas.attested_nodes(), &[3]);
        // A node that attested but has no uploaded bundle is not in the membership.
        cas.mark_attested(9);
        assert_eq!(
            cas.bundle_for(9),
            Err(AttestError::NotInMembership { node_id: 9 })
        );
    }

    #[test]
    fn latency_is_around_the_table4_mean() {
        let mut cas = ConfigAndAttestService::new(vec![], 1);
        let samples: Vec<u64> = (0..200).map(|_| cas.sample_latency_ns()).collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        let expected = CAS_MEAN_LATENCY_NS as f64;
        assert!((mean - expected).abs() / expected < 0.05, "mean was {mean}");
        for s in samples {
            assert!((s as f64) >= expected * 0.8 && (s as f64) <= expected * 1.2);
        }
        assert_eq!(cas.name(), "Recipe CAS");
    }

    #[test]
    fn marking_attested_twice_is_idempotent() {
        let mut cas = ConfigAndAttestService::new(vec![], 1);
        cas.mark_attested(2);
        cas.mark_attested(2);
        assert_eq!(cas.attested_nodes(), &[2]);
    }
}

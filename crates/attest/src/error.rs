//! Error type for the attestation phase.

use recipe_tee::TeeError;
use std::fmt;

/// Errors produced by the attestation services and protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestError {
    /// The quote did not verify (wrong measurement, bad signature or stale nonce).
    QuoteRejected {
        /// Why verification failed.
        reason: String,
    },
    /// The platform that produced the quote is not registered with the verifier.
    UnknownPlatform {
        /// The unregistered platform id.
        platform_id: u64,
    },
    /// The enclave refused an operation (crashed, missing secret, …).
    Tee(TeeError),
    /// The provisioned secret bundle failed to decrypt or parse on the enclave side.
    ProvisioningFailed,
    /// The node requesting attestation is not part of the configured membership.
    NotInMembership {
        /// The rejected node id.
        node_id: u64,
    },
}

impl fmt::Display for AttestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttestError::QuoteRejected { reason } => write!(f, "quote rejected: {reason}"),
            AttestError::UnknownPlatform { platform_id } => {
                write!(
                    f,
                    "platform {platform_id} is not registered with the verifier"
                )
            }
            AttestError::Tee(err) => write!(f, "TEE error during attestation: {err}"),
            AttestError::ProvisioningFailed => {
                write!(f, "secret bundle could not be decrypted or parsed")
            }
            AttestError::NotInMembership { node_id } => {
                write!(f, "node {node_id} is not part of the configured membership")
            }
        }
    }
}

impl std::error::Error for AttestError {}

impl From<TeeError> for AttestError {
    fn from(err: TeeError) -> Self {
        AttestError::Tee(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let err: AttestError = TeeError::EnclaveCrashed.into();
        assert!(err.to_string().contains("TEE error"));
        assert!(AttestError::NotInMembership { node_id: 4 }
            .to_string()
            .contains('4'));
    }
}

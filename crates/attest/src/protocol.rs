//! The end-to-end remote attestation exchange (paper Algorithm 2, steps A.1–A.8 of
//! Figure 1).
//!
//! Parties:
//!
//! * the **challenger** (protocol designer via the CAS) — generates the freshness
//!   nonce and an ephemeral key-exchange secret, verifies the quote, and on success
//!   provisions the node's secret bundle;
//! * the **enclave** — produces a report binding the nonce and its own ephemeral
//!   public value to its measurement, has the platform sign it into a quote, and on
//!   success installs the provisioned secrets.
//!
//! [`run_remote_attestation`] drives the whole exchange in one call and returns the
//! latency it would have taken, so both the Table 4 experiment and the simulator's
//! initialization phase can account for it.

use rand::RngCore;
use recipe_crypto::{EphemeralSecret, KxPublic, MacKey, Nonce, SigningKeyPair};
use recipe_tee::Enclave;

use crate::error::AttestError;
use crate::secrets::SecretBundle;
use crate::verifier::QuoteVerifier;

/// The result of a successful attestation round.
#[derive(Debug)]
pub struct AttestationOutcome {
    /// The node that attested.
    pub node_id: u64,
    /// End-to-end latency of the exchange in nanoseconds (dominated by the
    /// verifier's round trip — Table 4).
    pub latency_ns: u64,
    /// Channels for which MAC keys were installed into the enclave.
    pub installed_channels: Vec<String>,
}

/// Runs the full remote-attestation + provisioning exchange for one node.
///
/// `bundle` is the secret bundle the protocol designer prepared for this node; it is
/// sealed under the attestation key exchange, so a man-in-the-middle on the untrusted
/// network learns nothing and cannot substitute its own keys.
pub fn run_remote_attestation<V: QuoteVerifier, R: RngCore>(
    verifier: &mut V,
    enclave: &mut Enclave,
    bundle: &SecretBundle,
    rng: &mut R,
) -> Result<AttestationOutcome, AttestError> {
    // --- Challenger: nonce + ephemeral key (Algorithm 2, remote_attestation()). ---
    let nonce = Nonce::random(rng);
    let challenger_kx = EphemeralSecret::generate(rng);

    // --- Enclave: attest() + generate_quote(). ---
    let report = enclave.attest(nonce, rng)?;
    let enclave_kx_public =
        KxPublic::try_from_slice(&report.kx_public).map_err(|_| AttestError::ProvisioningFailed)?;
    let quote = enclave.generate_quote(report)?;

    // --- Challenger: verify the quote against the expected measurement. ---
    let expected_measurement = enclave.config().measurement();
    verifier.verify_quote(&quote, &expected_measurement, &nonce)?;
    let latency_ns = verifier.sample_latency_ns();

    // --- Challenger: seal the secret bundle under the shared secret. ---
    let challenger_shared = challenger_kx.derive_shared(&enclave_kx_public);
    let sealed_bundle = bundle.seal(&challenger_shared);

    // --- Enclave: derive the same shared secret, open and install the bundle. ---
    let enclave_shared = enclave.complete_key_exchange(&challenger_kx.public())?;
    let opened = SecretBundle::open(&enclave_shared, &sealed_bundle)?;

    let signing_key = SigningKeyPair::from_secret_bytes(&opened.signing_seed)
        .map_err(|_| AttestError::ProvisioningFailed)?;
    enclave.install_signing_key(signing_key)?;

    let mut installed_channels = Vec::new();
    for (label, key) in &opened.channel_keys {
        enclave.provision_mac_key(label.clone(), key.clone())?;
        installed_channels.push(label.clone());
    }
    if let Some(cipher_key_bytes) = &opened.cipher_key {
        let mut key = [0u8; 32];
        if cipher_key_bytes.len() != 32 {
            return Err(AttestError::ProvisioningFailed);
        }
        key.copy_from_slice(cipher_key_bytes);
        enclave.provision_cipher_key("recipe.values", recipe_crypto::CipherKey::from_bytes(key))?;
    }

    Ok(AttestationOutcome {
        node_id: opened.node_id,
        latency_ns,
        installed_channels,
    })
}

/// Builds the per-channel MAC keys for a full cluster: one key per ordered pair of
/// members, derived deterministically from a deployment master secret so every
/// node's bundle contains exactly the keys for the channels it participates in.
pub fn derive_channel_keys(
    master: &MacKey,
    members: &[u64],
    node_id: u64,
) -> std::collections::BTreeMap<String, MacKey> {
    let mut keys = std::collections::BTreeMap::new();
    for &a in members {
        for &b in members {
            if a == b {
                continue;
            }
            // Node `node_id` needs the key for every channel it sends on or receives
            // from.
            if a != node_id && b != node_id {
                continue;
            }
            let label = format!("cq:{a}->{b}");
            keys.insert(label.clone(), master.derive(&label));
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cas::ConfigAndAttestService;
    use crate::ias::IntelAttestationService;
    use crate::secrets::ClusterConfig;
    use rand::SeedableRng;
    use recipe_tee::{EnclaveConfig, EnclaveId, TeeError};

    fn bundle_for(node_id: u64, members: &[u64]) -> SecretBundle {
        let master = MacKey::from_bytes([0x11; 32]);
        SecretBundle {
            node_id,
            signing_seed: SigningKeyPair::generate_from_seed(100 + node_id).expose_secret_vec(),
            channel_keys: derive_channel_keys(&master, members, node_id),
            cipher_key: Some(vec![0x22; 32]),
            config: ClusterConfig::for_replicas(members.len(), 1, "replica-code"),
        }
    }

    trait ExposeVec {
        fn expose_secret_vec(&self) -> Vec<u8>;
    }
    impl ExposeVec for SigningKeyPair {
        fn expose_secret_vec(&self) -> Vec<u8> {
            use recipe_crypto::KeyMaterial;
            self.expose_secret().to_vec()
        }
    }

    #[test]
    fn successful_attestation_installs_all_secrets() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut enclave = Enclave::launch(EnclaveId(1), EnclaveConfig::new("replica-code", 3));
        let mut cas = ConfigAndAttestService::new(vec![(3, enclave.platform_vendor_key())], 1);
        let bundle = bundle_for(1, &[0, 1, 2]);

        let outcome = run_remote_attestation(&mut cas, &mut enclave, &bundle, &mut rng).unwrap();
        assert_eq!(outcome.node_id, 1);
        assert!(outcome.latency_ns > 0);
        // Node 1 talks to nodes 0 and 2 in both directions → 4 channels.
        assert_eq!(outcome.installed_channels.len(), 4);
        assert!(enclave.signing_key().is_ok());
        assert!(enclave.mac_key("cq:1->0").is_ok());
        assert!(enclave.mac_key("cq:0->1").is_ok());
        assert!(enclave.mac_key("cq:2->1").is_ok());
        assert!(enclave.cipher("recipe.values").is_ok());
        // No key for a channel node 1 does not participate in.
        assert!(enclave.mac_key("cq:0->2").is_err());
    }

    #[test]
    fn attestation_fails_for_wrong_code() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // The enclave runs tampered code; the CAS expects "replica-code" because
        // that is what the bundle's config says, but the quote carries the
        // measurement of what actually runs.
        let mut enclave = Enclave::launch(EnclaveId(1), EnclaveConfig::new("tampered-code", 3));
        let cas = ConfigAndAttestService::new(vec![(3, enclave.platform_vendor_key())], 1);
        let bundle = bundle_for(1, &[0, 1, 2]);
        // The verification in run_remote_attestation checks the enclave's own
        // expected measurement, so simulate the CAS-side policy check by verifying
        // against the membership's code identity explicitly.
        let nonce = Nonce::from_u128(5);
        let report = enclave.attest(nonce, &mut rng).unwrap();
        let quote = enclave.generate_quote(report).unwrap();
        let expected = recipe_tee::Measurement::of_code(&bundle.config.code_identity);
        assert!(matches!(
            crate::verifier::QuoteVerifier::verify_quote(&cas, &quote, &expected, &nonce),
            Err(AttestError::QuoteRejected { .. })
        ));
        // And the full flow also fails if the platform is unknown to the CAS.
        let mut strange_cas = ConfigAndAttestService::new(vec![], 1);
        assert!(matches!(
            run_remote_attestation(&mut strange_cas, &mut enclave, &bundle, &mut rng),
            Err(AttestError::UnknownPlatform { .. })
        ));
        let _ = cas;
    }

    #[test]
    fn crashed_enclave_cannot_attest() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut enclave = Enclave::launch(EnclaveId(1), EnclaveConfig::new("replica-code", 3));
        let mut cas = ConfigAndAttestService::new(vec![(3, enclave.platform_vendor_key())], 1);
        enclave.crash();
        assert_eq!(
            run_remote_attestation(&mut cas, &mut enclave, &bundle_for(1, &[0, 1, 2]), &mut rng)
                .unwrap_err(),
            AttestError::Tee(TeeError::EnclaveCrashed)
        );
    }

    #[test]
    fn ias_path_works_but_is_slower() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut enclave_a = Enclave::launch(EnclaveId(1), EnclaveConfig::new("replica-code", 3));
        let mut enclave_b = Enclave::launch(EnclaveId(2), EnclaveConfig::new("replica-code", 3));
        let vendor = enclave_a.platform_vendor_key();
        let mut cas = ConfigAndAttestService::new(vec![(3, vendor)], 1);
        let mut ias = IntelAttestationService::new(vec![(3, vendor)], 1);

        let via_cas = run_remote_attestation(
            &mut cas,
            &mut enclave_a,
            &bundle_for(1, &[0, 1, 2]),
            &mut rng,
        )
        .unwrap();
        let via_ias = run_remote_attestation(
            &mut ias,
            &mut enclave_b,
            &bundle_for(2, &[0, 1, 2]),
            &mut rng,
        )
        .unwrap();
        assert!(via_ias.latency_ns > 5 * via_cas.latency_ns);
    }

    #[test]
    fn channel_key_derivation_is_symmetric_across_bundles() {
        // The key node 1 holds for cq:1->2 must equal the key node 2 holds for the
        // same channel, otherwise verification would fail between honest nodes.
        let master = MacKey::from_bytes([0x11; 32]);
        let keys_1 = derive_channel_keys(&master, &[0, 1, 2], 1);
        let keys_2 = derive_channel_keys(&master, &[0, 1, 2], 2);
        assert_eq!(keys_1.get("cq:1->2"), keys_2.get("cq:1->2"));
        assert_eq!(keys_1.get("cq:2->1"), keys_2.get("cq:2->1"));
        assert!(keys_1.contains_key("cq:0->1"));
        assert!(!keys_1.contains_key("cq:0->2"));
    }

    #[test]
    fn malformed_bundle_fields_fail_provisioning() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut enclave = Enclave::launch(EnclaveId(1), EnclaveConfig::new("replica-code", 3));
        let mut cas = ConfigAndAttestService::new(vec![(3, enclave.platform_vendor_key())], 1);
        let mut bundle = bundle_for(1, &[0, 1, 2]);
        bundle.cipher_key = Some(vec![1, 2, 3]); // wrong length
        assert_eq!(
            run_remote_attestation(&mut cas, &mut enclave, &bundle, &mut rng).unwrap_err(),
            AttestError::ProvisioningFailed
        );
    }
}

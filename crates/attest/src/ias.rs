//! Stand-in for the vendor-hosted Intel Attestation Service (IAS).
//!
//! The real IAS is a wide-area web service operated by the hardware vendor. Its
//! verification *logic* is the same as the CAS's (check the hardware signature and
//! the measurement); what differs is the round-trip latency — the paper measures
//! ≈2.9 s per attestation against IAS versus ≈0.17 s against the datacenter-local
//! CAS (Table 4). Per DESIGN.md the service itself is simulated: same checks, IAS
//! latency model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recipe_crypto::{Nonce, PublicKey};
use recipe_tee::{Measurement, Quote};
use std::collections::HashMap;

use crate::error::AttestError;
use crate::verifier::QuoteVerifier;

/// Mean verification latency of the vendor attestation service
/// (paper Table 4: 2.913 s).
pub const IAS_MEAN_LATENCY_NS: u64 = 2_913_000_000;
/// Latency jitter applied around the mean (± this fraction). Wide-area paths are
/// noisier than the datacenter-local CAS.
const LATENCY_JITTER: f64 = 0.25;

/// The vendor attestation service stand-in.
pub struct IntelAttestationService {
    vendor_keys: HashMap<u64, PublicKey>,
    rng: StdRng,
    mean_latency_ns: u64,
}

impl IntelAttestationService {
    /// Creates the service trusting the given `(platform_id, vendor_key)` pairs.
    pub fn new(vendor_keys: Vec<(u64, PublicKey)>, seed: u64) -> Self {
        IntelAttestationService {
            vendor_keys: vendor_keys.into_iter().collect(),
            rng: StdRng::seed_from_u64(seed),
            mean_latency_ns: IAS_MEAN_LATENCY_NS,
        }
    }

    /// Overrides the mean latency (calibration tests).
    pub fn with_mean_latency_ns(mut self, latency_ns: u64) -> Self {
        self.mean_latency_ns = latency_ns;
        self
    }

    /// Registers another trusted platform.
    pub fn register_platform(&mut self, platform_id: u64, vendor_key: PublicKey) {
        self.vendor_keys.insert(platform_id, vendor_key);
    }
}

impl QuoteVerifier for IntelAttestationService {
    fn verify_quote(
        &self,
        quote: &Quote,
        expected_measurement: &Measurement,
        nonce: &Nonce,
    ) -> Result<(), AttestError> {
        let vendor_key =
            self.vendor_keys
                .get(&quote.platform_id)
                .ok_or(AttestError::UnknownPlatform {
                    platform_id: quote.platform_id,
                })?;
        quote
            .verify(vendor_key, expected_measurement, nonce)
            .map(|_| ())
            .map_err(|err| AttestError::QuoteRejected {
                reason: err.to_string(),
            })
    }

    fn sample_latency_ns(&mut self) -> u64 {
        let jitter = self.rng.gen_range(-LATENCY_JITTER..=LATENCY_JITTER);
        ((self.mean_latency_ns as f64) * (1.0 + jitter)) as u64
    }

    fn name(&self) -> &'static str {
        "IAS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cas::{ConfigAndAttestService, CAS_MEAN_LATENCY_NS};
    use rand::SeedableRng;
    use recipe_tee::{Enclave, EnclaveConfig, EnclaveId};

    #[test]
    fn verification_logic_matches_cas_but_latency_is_much_higher() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut enclave = Enclave::launch(EnclaveId(0), EnclaveConfig::new("code", 5));
        let nonce = Nonce::from_u128(1);
        let report = enclave.attest(nonce, &mut rng).unwrap();
        let quote = enclave.generate_quote(report).unwrap();

        let mut ias = IntelAttestationService::new(vec![(5, enclave.platform_vendor_key())], 1);
        assert!(ias
            .verify_quote(&quote, &Measurement::of_code("code"), &nonce)
            .is_ok());
        assert_eq!(ias.name(), "IAS");

        // Table 4: the IAS path is roughly 18x slower than the CAS path.
        let mut cas = ConfigAndAttestService::new(vec![], 1);
        let ias_mean: f64 = (0..100)
            .map(|_| ias.sample_latency_ns() as f64)
            .sum::<f64>()
            / 100.0;
        let cas_mean: f64 = (0..100)
            .map(|_| cas.sample_latency_ns() as f64)
            .sum::<f64>()
            / 100.0;
        let speedup = ias_mean / cas_mean;
        assert!(
            (14.0..=23.0).contains(&speedup),
            "CAS should be ~18x faster; measured {speedup:.1}x"
        );
        assert!(cas_mean < 1.1 * CAS_MEAN_LATENCY_NS as f64);
    }

    #[test]
    fn unknown_platform_is_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut enclave = Enclave::launch(EnclaveId(0), EnclaveConfig::new("code", 5));
        let nonce = Nonce::from_u128(1);
        let report = enclave.attest(nonce, &mut rng).unwrap();
        let quote = enclave.generate_quote(report).unwrap();
        let ias = IntelAttestationService::new(vec![], 1);
        assert_eq!(
            ias.verify_quote(&quote, &Measurement::of_code("code"), &nonce),
            Err(AttestError::UnknownPlatform { platform_id: 5 })
        );
    }

    #[test]
    fn latency_override_is_respected() {
        let mut ias = IntelAttestationService::new(vec![], 1).with_mean_latency_ns(1_000);
        for _ in 0..50 {
            assert!(ias.sample_latency_ns() <= 1_250);
        }
    }
}

//! Attestation services: the transferable-authentication phase of Recipe.
//!
//! Before any node may participate in the replication protocol it must prove that it
//! runs the expected code inside a genuine TEE (paper §3.6). This crate implements
//! the parties and the protocol of that phase:
//!
//! * [`verifier::QuoteVerifier`] — the abstract quote-verification service, with two
//!   implementations: the datacenter-local [`cas::ConfigAndAttestService`] (Recipe
//!   CAS) and the vendor-hosted [`ias::IntelAttestationService`] stand-in. Both run
//!   the same verification logic; they differ in their latency model, which is what
//!   Table 4 measures (CAS ≈ 0.169 s vs IAS ≈ 2.9 s per attestation).
//! * [`secrets::SecretBundle`] — the configuration and key material (signing keys,
//!   per-channel MAC keys, value-encryption key, membership) the protocol designer
//!   provisions to successfully attested replicas.
//! * [`protocol`] — the end-to-end remote-attestation exchange of Algorithm 2:
//!   nonce challenge → enclave report → hardware-signed quote → verification →
//!   Diffie-Hellman-protected secret provisioning.
//!
//! Per DESIGN.md, the real Intel Attestation Service is replaced by a latency-modeled
//! stand-in; the protocol logic (what gets signed, what gets checked, what gets
//! provisioned) is implemented in full and exercised by both paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cas;
pub mod error;
pub mod ias;
pub mod protocol;
pub mod secrets;
pub mod verifier;

pub use cas::ConfigAndAttestService;
pub use error::AttestError;
pub use ias::IntelAttestationService;
pub use protocol::{derive_channel_keys, run_remote_attestation, AttestationOutcome};
pub use secrets::{ClusterConfig, SecretBundle};
pub use verifier::QuoteVerifier;

//! The quote-verification interface shared by the CAS and the IAS stand-in.

use recipe_crypto::Nonce;
use recipe_tee::{Measurement, Quote};

use crate::error::AttestError;

/// A service able to verify attestation quotes and report how long one verification
/// round trip takes.
///
/// Both implementations run the identical cryptographic checks; they differ only in
/// where they run (datacenter-local CAS vs. vendor-hosted IAS) and therefore in
/// latency — the property Table 4 measures.
pub trait QuoteVerifier {
    /// Verifies `quote` against the expected measurement for the claimed code
    /// identity and the challenge `nonce`.
    fn verify_quote(
        &self,
        quote: &Quote,
        expected_measurement: &Measurement,
        nonce: &Nonce,
    ) -> Result<(), AttestError>;

    /// Latency (nanoseconds) of one verification round trip, including the network
    /// path to wherever the service runs. The value is sampled per call so repeated
    /// attestations exhibit realistic jitter.
    fn sample_latency_ns(&mut self) -> u64;

    /// Human-readable name used in experiment output ("Recipe CAS", "IAS").
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cas::ConfigAndAttestService;
    use crate::ias::IntelAttestationService;
    use rand::SeedableRng;
    use recipe_tee::{Enclave, EnclaveConfig, EnclaveId};

    /// Both verifier implementations accept the same honest quote and reject the same
    /// forged one — the logic is shared, only latency differs.
    #[test]
    fn cas_and_ias_agree_on_verification_results() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut enclave = Enclave::launch(EnclaveId(0), EnclaveConfig::new("code-v1", 50));
        let nonce = Nonce::from_u128(4242);
        let report = enclave.attest(nonce, &mut rng).unwrap();
        let quote = enclave.generate_quote(report).unwrap();
        let expected = Measurement::of_code("code-v1");
        let wrong = Measurement::of_code("code-v2");

        let cas = ConfigAndAttestService::new(vec![(50, enclave.platform_vendor_key())], 7);
        let ias = IntelAttestationService::new(vec![(50, enclave.platform_vendor_key())], 7);

        assert!(cas.verify_quote(&quote, &expected, &nonce).is_ok());
        assert!(ias.verify_quote(&quote, &expected, &nonce).is_ok());
        assert!(cas.verify_quote(&quote, &wrong, &nonce).is_err());
        assert!(ias.verify_quote(&quote, &wrong, &nonce).is_err());
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the rand 0.8 API surface this workspace uses, backed
//! by a deterministic xoshiro256** generator (seeded through SplitMix64). The
//! sequences differ from the real `StdRng` (ChaCha12), which is fine here:
//! every consumer only relies on *determinism for a given seed*, never on a
//! specific stream.

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker: generators suitable for cryptographic use. The workspace's simulated
/// enclaves only need determinism, so `StdRng` carries the marker like the real
/// crate's `StdRng` does.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_in(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: crate::distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(&mut *self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a "standard" uniform distribution (rand's `Standard`).
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty : $via:ident),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(u8: next_u32, u16: next_u32, u32: next_u32, u64: next_u64, usize: next_u64,
              i8: next_u32, i16: next_u32, i32: next_u32, i64: next_u64, isize: next_u64);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard_sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

range_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                (start as i64).wrapping_add(uniform_u64(rng, span.wrapping_add(1)) as i64) as $t
            }
        }
    )*};
}

signed_range_impl!(i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        start + f64::standard_sample(rng) * (end - start)
    }
}

/// Unbiased-enough uniform draw in `[0, span)` (Lemire-style multiply-shift).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

pub mod rngs {
    //! Concrete generators.

    use super::{CryptoRng, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    impl CryptoRng for StdRng {}
}

pub mod distributions {
    //! Distribution sampling (rand's `Distribution` trait).

    use super::Rng;

    /// Types that produce values of `T` given a generator.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard uniform distribution marker (for parity with rand).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl<T: super::StandardSample> Distribution<T> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::standard_sample(rng)
        }
    }
}

pub mod seq {
    //! Slice shuffling/choosing helpers (rand's `SliceRandom`).

    use super::Rng;

    /// Random helpers on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, or `None` if empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

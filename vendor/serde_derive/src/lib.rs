//! Offline stand-in for `serde_derive`.
//!
//! Derives the miniature `serde` stand-in's `Serialize` / `Deserialize` traits
//! (value-tree data model) for structs and enums. Implemented directly over
//! `proc_macro::TokenStream` — no `syn`/`quote`, because the build environment
//! cannot download crates.
//!
//! Supported shapes (everything this workspace uses):
//! * unit / tuple / named-field structs, with or without type generics;
//! * enums with unit, tuple and named-field variants (externally tagged,
//!   like real serde: `"Variant"` or `{"Variant": …}`).
//!
//! `#[serde(...)]` attributes are accepted but ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or of one enum variant.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Body {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Def {
    name: String,
    /// Type-parameter names (lifetimes and const params are not supported —
    /// nothing in the workspace derives serde traits on such types).
    generics: Vec<String>,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_def(input);
    gen_serialize(&def)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_def(input);
    gen_deserialize(&def)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_def(input: TokenStream) -> Def {
    let mut it = input.into_iter().peekable();
    // Skip outer attributes and visibility until `struct` / `enum`.
    let mut is_enum = false;
    loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the following [...] group.
                it.next();
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" {
                    break;
                }
                if s == "enum" {
                    is_enum = true;
                    break;
                }
                // `pub`, `pub(crate)` etc: a paren group may follow.
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
            }
            Some(_) => {}
            None => panic!("derive input has no struct/enum keyword"),
        }
    }
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    // Generics.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            it.next();
            let mut depth = 1usize;
            let mut at_param_start = true;
            while depth > 0 {
                match it.next().expect("unclosed generics") {
                    TokenTree::Punct(p) => match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 1 => at_param_start = true,
                        '\'' => {
                            // Lifetime: skip its ident, stay at param start only
                            // until the name is consumed below.
                            it.next();
                            at_param_start = false;
                        }
                        ':' => at_param_start = false,
                        _ => {}
                    },
                    TokenTree::Ident(id) if depth == 1 && at_param_start => {
                        let s = id.to_string();
                        if s == "const" {
                            // const param: next ident is the name; record nothing
                            // (const params need no trait bounds) but keep the name
                            // for the impl header.
                            panic!("const generics are not supported by the serde stand-in derive");
                        }
                        generics.push(s);
                        at_param_start = false;
                    }
                    _ => {}
                }
            }
        }
    }
    let body = if is_enum {
        let group = next_brace_group(&mut it);
        Body::Enum(parse_variants(group.stream()))
    } else {
        // Struct: named `{...}`, tuple `(...)` then `;`, or unit `;`.
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => panic!("unexpected struct body: {other:?}"),
        }
    };
    Def {
        name,
        generics,
        body,
    }
}

fn next_brace_group(it: &mut impl Iterator<Item = TokenTree>) -> proc_macro::Group {
    for tt in it {
        if let TokenTree::Group(g) = tt {
            if g.delimiter() == Delimiter::Brace {
                return g;
            }
        }
    }
    panic!("expected brace group");
}

/// Parses `name: Type, ...` field lists; angle-bracket depth is tracked so
/// commas inside `Vec<...>` etc. do not split fields.
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    it.next();
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match it.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        }
        // Expect `:` then skip the type until a top-level comma.
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field name, got {other:?}"),
        }
        let mut angle = 0i32;
        loop {
            match it.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                },
                Some(_) => {}
                None => break,
            }
        }
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut count = 0usize;
    let mut any = false;
    let mut angle = 0i32;
    for tt in ts {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => count += 1,
                '#' => {}
                _ => any = true,
            },
            _ => any = true,
        }
    }
    if !any {
        0
    } else {
        // A trailing comma would overcount by one only if nothing followed it;
        // treat "tokens ending in a top-level comma" as already counted.
        count + 1
    }
}

fn parse_variants(ts: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '#' {
                it.next();
                it.next();
            } else {
                break;
            }
        }
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.clone();
                it.next();
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.clone();
                it.next();
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        loop {
            match it.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
                None => break,
            }
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (as strings, parsed back into a TokenStream)
// ---------------------------------------------------------------------------

fn impl_header(def: &Def, trait_name: &str) -> String {
    if def.generics.is_empty() {
        format!("impl ::serde::{t} for {n}", t = trait_name, n = def.name)
    } else {
        let bounded: Vec<String> = def
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        format!(
            "impl<{bounds}> ::serde::{t} for {n}<{params}>",
            bounds = bounded.join(", "),
            t = trait_name,
            n = def.name,
            params = def.generics.join(", ")
        )
    }
}

fn gen_serialize(def: &Def) -> String {
    let body = match &def.body {
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", items.join(", "))
        }
        Body::Enum(variants) => {
            let mut arms = Vec::new();
            for (vname, fields) in variants {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{n}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),",
                        n = def.name,
                        v = vname
                    ),
                    Fields::Tuple(count) => {
                        let binds: Vec<String> = (0..*count).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{n}::{v}({binds}) => ::serde::Value::Map(vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Array(vec![{items}]))]),",
                            n = def.name,
                            v = vname,
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                    Fields::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{n}::{v} {{ {binds} }} => ::serde::Value::Map(vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Map(vec![{items}]))]),",
                            n = def.name,
                            v = vname,
                            binds = fields.join(", "),
                            items = items.join(", ")
                        )
                    }
                };
                arms.push(arm);
            }
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{header} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        header = impl_header(def, "Serialize"),
        body = body
    )
}

fn gen_deserialize(def: &Def) -> String {
    let body = match &def.body {
        Body::Struct(Fields::Unit) => format!(
            "match __v {{ ::serde::Value::Null => Ok({n}), _ => Err(::serde::Error::custom(\"expected null for unit struct {n}\")) }}",
            n = def.name
        ),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "{{ let __items = __v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?; \
                 if __items.len() != {n} {{ return Err(::serde::Error::custom(\"wrong arity for {name}\")); }} \
                 Ok({name}({items})) }}",
                name = def.name,
                n = n,
                items = items.join(", ")
            )
        }
        Body::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, \"{f}\").ok_or_else(|| ::serde::Error::custom(\"missing field {f}\"))?)?"
                    )
                })
                .collect();
            format!(
                "{{ let __m = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}\"))?; \
                 Ok({name} {{ {items} }}) }}",
                name = def.name,
                items = items.join(", ")
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push(format!(
                        "\"{v}\" => return Ok({n}::{v}),",
                        n = def.name,
                        v = vname
                    )),
                    Fields::Tuple(count) => {
                        let items: Vec<String> = (0..*count)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        tagged_arms.push(format!(
                            "\"{v}\" => {{ let __items = __inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array payload\"))?; \
                             if __items.len() != {count} {{ return Err(::serde::Error::custom(\"wrong arity for {v}\")); }} \
                             return Ok({n}::{v}({items})); }}",
                            n = def.name,
                            v = vname,
                            count = count,
                            items = items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::map_get(__fm, \"{f}\").ok_or_else(|| ::serde::Error::custom(\"missing field {f}\"))?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "\"{v}\" => {{ let __fm = __inner.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map payload\"))?; \
                             return Ok({n}::{v} {{ {items} }}); }}",
                            n = def.name,
                            v = vname,
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "{{ if let Some(__s) = __v.as_str() {{ match __s {{ {units} _ => return Err(::serde::Error::custom(\"unknown variant\")) }} }} \
                 if let Some(__entries) = __v.as_map() {{ if __entries.len() == 1 {{ let (__tag, __inner) = &__entries[0]; match __tag.as_str() {{ {tagged} _ => return Err(::serde::Error::custom(\"unknown variant\")) }} }} }} \
                 Err(::serde::Error::custom(\"bad enum encoding for {name}\")) }}",
                units = unit_arms.join(" "),
                tagged = tagged_arms.join(" "),
                name = def.name
            )
        }
    };
    format!(
        "{header} {{ fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        header = impl_header(def, "Deserialize"),
        body = body
    )
}

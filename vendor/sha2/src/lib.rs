//! Offline stand-in for the `sha2` crate.
//!
//! A from-scratch implementation of SHA-256 (FIPS 180-4) exposing the subset
//! of the `digest` API surface this workspace uses: `Sha256::new`, `update`,
//! `finalize` (whose output converts into `[u8; 32]`). Unlike most of the
//! vendored stand-ins this one is the *real algorithm* — the workspace's known
//! answer tests check SHA-256 test vectors.

#![forbid(unsafe_code)]

/// Round constants: fractional parts of the cube roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: fractional parts of the square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// The hashing trait surface (`digest::Digest` subset).
pub trait Digest: Default {
    /// Output array type.
    type Output;

    /// Creates a fresh hasher.
    fn new() -> Self {
        Self::default()
    }

    /// Feeds data into the hasher.
    fn update(&mut self, data: impl AsRef<[u8]>);

    /// Consumes the hasher, producing the digest.
    fn finalize(self) -> Self::Output;

    /// One-shot convenience.
    fn digest(data: impl AsRef<[u8]>) -> Self::Output {
        let mut hasher = Self::new();
        hasher.update(data);
        hasher.finalize()
    }
}

/// A 32-byte digest output that converts into `[u8; 32]` and derefs to a slice
/// (mirroring `GenericArray` at the call sites this workspace has).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Output32(pub [u8; 32]);

impl From<Output32> for [u8; 32] {
    fn from(o: Output32) -> Self {
        o.0
    }
}

impl AsRef<[u8]> for Output32 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::ops::Deref for Output32 {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Incremental SHA-256.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            total_len: 0,
        }
    }
}

impl Sha256 {
    /// Creates a fresh hasher (inherent, so call sites need not import the trait).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self::default()
    }

    fn compress(state: &mut [u32; 8], block: &[u8]) {
        debug_assert_eq!(block.len(), 64);
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }

    fn update_bytes(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                Self::compress(&mut self.state, &block);
                self.buffered = 0;
            }
            if data.is_empty() {
                // Nothing left beyond the (possibly still partial) buffer; the
                // remainder handling below must not clobber it.
                return;
            }
        }
        let mut blocks = data.chunks_exact(64);
        for block in &mut blocks {
            Self::compress(&mut self.state, block);
        }
        let rem = blocks.remainder();
        self.buffer[..rem.len()].copy_from_slice(rem);
        self.buffered = rem.len();
    }

    fn finalize_bytes(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding(0x80);
        while self.buffered != 56 {
            self.update_padding(0);
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&bit_len.to_be_bytes());
        for b in len_bytes {
            self.update_padding(b);
        }
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_padding(&mut self, byte: u8) {
        self.buffer[self.buffered] = byte;
        self.buffered += 1;
        if self.buffered == 64 {
            let block = self.buffer;
            Self::compress(&mut self.state, &block);
            self.buffered = 0;
        }
    }
}

impl Digest for Sha256 {
    type Output = Output32;

    fn update(&mut self, data: impl AsRef<[u8]>) {
        self.update_bytes(data.as_ref());
    }

    fn finalize(self) -> Output32 {
        Output32(self.finalize_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        let mut h = Sha256::new();
        h.update(b"abc");
        assert_eq!(
            hex(&<[u8; 32]>::from(h.finalize())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );

        let empty = Sha256::new();
        assert_eq!(
            hex(&<[u8; 32]>::from(empty.finalize())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );

        let mut two_block = Sha256::new();
        two_block.update(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
        assert_eq!(
            hex(&<[u8; 32]>::from(two_block.finalize())),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut a = Sha256::new();
        a.update(b"hello ");
        a.update(b"world");
        let mut b = Sha256::new();
        b.update(b"hello world");
        assert_eq!(a.finalize(), b.finalize());
    }

    #[test]
    fn long_input_crosses_blocks() {
        let data = vec![0xA5u8; 1000];
        let mut whole = Sha256::new();
        whole.update(&data);
        let mut parts = Sha256::new();
        for chunk in data.chunks(37) {
            parts.update(chunk);
        }
        assert_eq!(whole.finalize(), parts.finalize());
    }
}

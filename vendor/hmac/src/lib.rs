//! Offline stand-in for the `hmac` crate.
//!
//! Implements RFC 2104 HMAC over the vendored SHA-256, exposing the `Mac`
//! trait subset this workspace uses (`new_from_slice`, `update`,
//! `finalize().into_bytes()`, `verify_slice`). Like the vendored `sha2`, this
//! is the real algorithm, not a behavioural stub.

#![forbid(unsafe_code)]

use sha2::{Digest, Output32, Sha256};
use std::marker::PhantomData;

/// Error returned when a key slice has an unusable length (never happens for
/// HMAC, which accepts any key length — present for API parity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLength;

/// Error returned when tag verification fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacError;

impl std::fmt::Display for MacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MAC verification failed")
    }
}

impl std::error::Error for MacError {}

/// Finalized MAC output wrapper (`CtOutput` in the real crate).
#[derive(Clone, Copy)]
pub struct CtOutput {
    bytes: Output32,
}

impl CtOutput {
    /// Extracts the tag bytes.
    pub fn into_bytes(self) -> Output32 {
        self.bytes
    }
}

/// Message authentication code trait (subset of `digest::Mac`).
pub trait Mac: Sized {
    /// Builds a MAC instance from a key of any length.
    fn new_from_slice(key: &[u8]) -> Result<Self, InvalidLength>;

    /// Feeds message bytes.
    fn update(&mut self, data: &[u8]);

    /// Produces the tag.
    fn finalize(self) -> CtOutput;

    /// Verifies the tag in constant time.
    fn verify_slice(self, tag: &[u8]) -> Result<(), MacError> {
        let computed = self.finalize().into_bytes();
        let computed = computed.as_ref();
        if computed.len() != tag.len() {
            return Err(MacError);
        }
        // Constant-time comparison: fold differences without short-circuiting.
        let mut diff = 0u8;
        for (a, b) in computed.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff == 0 {
            Ok(())
        } else {
            Err(MacError)
        }
    }
}

/// HMAC keyed hash. Only `Hmac<Sha256>` is instantiable in this stand-in.
pub struct Hmac<D> {
    inner: Sha256,
    outer: Sha256,
    _digest: PhantomData<D>,
}

impl Clone for Hmac<Sha256> {
    fn clone(&self) -> Self {
        Hmac {
            inner: self.inner.clone(),
            outer: self.outer.clone(),
            _digest: PhantomData,
        }
    }
}

const BLOCK_LEN: usize = 64;

impl Mac for Hmac<Sha256> {
    fn new_from_slice(key: &[u8]) -> Result<Self, InvalidLength> {
        let mut padded = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let mut h = Sha256::new();
            Digest::update(&mut h, key);
            let digest: [u8; 32] = h.finalize().into();
            padded[..32].copy_from_slice(&digest);
        } else {
            padded[..key.len()].copy_from_slice(key);
        }
        let mut inner = Sha256::new();
        let mut outer = Sha256::new();
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = padded[i] ^ 0x36;
            opad[i] = padded[i] ^ 0x5c;
        }
        Digest::update(&mut inner, ipad);
        Digest::update(&mut outer, opad);
        Ok(Hmac {
            inner,
            outer,
            _digest: PhantomData,
        })
    }

    fn update(&mut self, data: &[u8]) {
        Digest::update(&mut self.inner, data);
    }

    fn finalize(self) -> CtOutput {
        let inner_digest: [u8; 32] = self.inner.finalize().into();
        let mut outer = self.outer;
        Digest::update(&mut outer, inner_digest);
        CtOutput {
            bytes: outer.finalize(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        // Key = 0x0b * 20, Data = "Hi There".
        let mut mac = Hmac::<Sha256>::new_from_slice(&[0x0b; 20]).unwrap();
        mac.update(b"Hi There");
        assert_eq!(
            hex(mac.finalize().into_bytes().as_ref()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        // Key = "Jefe", Data = "what do ya want for nothing?".
        let mut mac = Hmac::<Sha256>::new_from_slice(b"Jefe").unwrap();
        mac.update(b"what do ya want for nothing?");
        assert_eq!(
            hex(mac.finalize().into_bytes().as_ref()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_keys_are_hashed_down() {
        let mut mac = Hmac::<Sha256>::new_from_slice(&[0xAA; 131]).unwrap();
        mac.update(b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(mac.finalize().into_bytes().as_ref()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_slice_accepts_and_rejects() {
        let mut mac = Hmac::<Sha256>::new_from_slice(b"key").unwrap();
        mac.update(b"msg");
        let tag: [u8; 32] = mac.clone().finalize().into_bytes().into();
        assert!(mac.clone().verify_slice(&tag).is_ok());
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(mac.verify_slice(&bad).is_err());
    }
}

//! Offline stand-in for `ed25519-dalek`.
//!
//! The build environment cannot download the real curve implementation, so
//! this crate keeps the *API shape* (`SigningKey`, `VerifyingKey`,
//! `Signature`, `Signer`, `Verifier`) over a deterministic hash-based scheme:
//!
//! * the verifying key is `SHA-256("recipe-ed25519-stub-pk" || seed)`;
//! * a signature is `SHA-256(pk || len(msg) || msg || 0) || SHA-256(pk || len(msg) || msg || 1)`.
//!
//! Signatures are 64 bytes, deterministic, *transferable* (verification needs
//! only the public key) and any bit flip in the message or signature is
//! detected — which is everything the deterministic simulator exercises.
//!
//! **This scheme is NOT cryptographically unforgeable**: anyone holding the
//! public key can recompute a "signature". The workspace's Byzantine network
//! adversary operates on wire bytes only and never forges with key material,
//! so the simulation's threat model is preserved. If this reproduction ever
//! talks to a real network, swap this crate for the real `ed25519-dalek` —
//! every call site compiles unchanged.

#![forbid(unsafe_code)]

use sha2::{Digest, Sha256};

/// Length of a public key.
pub const PUBLIC_KEY_LENGTH: usize = 32;
/// Length of a secret seed.
pub const SECRET_KEY_LENGTH: usize = 32;
/// Length of a signature.
pub const SIGNATURE_LENGTH: usize = 64;

/// Error type for malformed keys/signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureError;

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "signature verification failed")
    }
}

impl std::error::Error for SignatureError {}

/// Types that can sign messages.
pub trait Signer<S> {
    /// Signs a message.
    fn sign(&self, message: &[u8]) -> S;
}

/// Types that can verify signatures.
pub trait Verifier<S> {
    /// Verifies a signature over a message.
    fn verify(&self, message: &[u8], signature: &S) -> Result<(), SignatureError>;
}

fn derive_public(seed: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    Digest::update(&mut h, b"recipe-ed25519-stub-pk");
    Digest::update(&mut h, seed);
    h.finalize().into()
}

fn signature_bytes(public: &[u8; 32], message: &[u8]) -> [u8; 64] {
    let mut out = [0u8; 64];
    for (i, half) in out.chunks_exact_mut(32).enumerate() {
        let mut h = Sha256::new();
        Digest::update(&mut h, b"recipe-ed25519-stub-sig");
        Digest::update(&mut h, public);
        Digest::update(&mut h, (message.len() as u64).to_le_bytes());
        Digest::update(&mut h, message);
        Digest::update(&mut h, [i as u8]);
        let half_bytes: [u8; 32] = h.finalize().into();
        half.copy_from_slice(&half_bytes);
    }
    out
}

/// A signing key (secret seed + cached public key).
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; 32],
    public: [u8; 32],
}

impl SigningKey {
    /// Builds a signing key from a 32-byte seed.
    pub fn from_bytes(seed: &[u8; 32]) -> Self {
        SigningKey {
            seed: *seed,
            public: derive_public(seed),
        }
    }

    /// The secret seed bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.seed
    }

    /// The corresponding verifying key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            public: self.public,
        }
    }
}

impl Signer<Signature> for SigningKey {
    fn sign(&self, message: &[u8]) -> Signature {
        Signature {
            bytes: signature_bytes(&self.public, message),
        }
    }
}

/// A public verification key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyingKey {
    public: [u8; 32],
}

impl VerifyingKey {
    /// Parses a verifying key from raw bytes (any 32 bytes are accepted).
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<Self, SignatureError> {
        Ok(VerifyingKey { public: *bytes })
    }

    /// The raw key bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.public
    }

    /// The raw key bytes, borrowed.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.public
    }
}

impl Verifier<Signature> for VerifyingKey {
    fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), SignatureError> {
        let expected = signature_bytes(&self.public, message);
        // Constant-time-ish comparison, same spirit as the real crate.
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(signature.bytes.iter()) {
            diff |= a ^ b;
        }
        if diff == 0 {
            Ok(())
        } else {
            Err(SignatureError)
        }
    }
}

/// A detached signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    bytes: [u8; 64],
}

impl Signature {
    /// Wraps raw signature bytes.
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        Signature { bytes: *bytes }
    }

    /// The raw signature bytes.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip_and_tamper_detection() {
        let key = SigningKey::from_bytes(&[7u8; 32]);
        let sig = key.sign(b"message");
        assert!(key.verifying_key().verify(b"message", &sig).is_ok());
        assert!(key.verifying_key().verify(b"messagE", &sig).is_err());

        let mut bad = sig.to_bytes();
        bad[63] ^= 0x80;
        let bad = Signature::from_bytes(&bad);
        assert!(key.verifying_key().verify(b"message", &bad).is_err());
    }

    #[test]
    fn different_seeds_give_different_keys() {
        let a = SigningKey::from_bytes(&[1u8; 32]);
        let b = SigningKey::from_bytes(&[2u8; 32]);
        assert_ne!(a.verifying_key(), b.verifying_key());
        let sig = a.sign(b"x");
        assert!(b.verifying_key().verify(b"x", &sig).is_err());
    }

    #[test]
    fn verification_is_transferable() {
        let key = SigningKey::from_bytes(&[9u8; 32]);
        let sig = key.sign(b"payload");
        let forwarded = VerifyingKey::from_bytes(&key.verifying_key().to_bytes()).unwrap();
        assert!(forwarded.verify(b"payload", &sig).is_ok());
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this reproduction has no access to crates.io, so
//! this workspace vendors a miniature serialization framework under the same
//! crate name. It is **not** API-compatible with real serde's
//! `Serializer`/`Deserializer` visitor machinery; instead it uses a small
//! value-tree data model (miniserde-style):
//!
//! * [`Serialize`] turns a value into a [`Value`] tree;
//! * [`Deserialize`] rebuilds a value from a [`Value`] tree;
//! * `#[derive(Serialize, Deserialize)]` (from the sibling `serde_derive`
//!   stand-in) generates both impls for structs and enums, mirroring serde's
//!   externally-tagged enum representation;
//! * the sibling `serde_json` stand-in renders [`Value`] trees to real JSON
//!   text and parses them back.
//!
//! Everything the Recipe workspace serializes goes through this single data
//! model, so wire formats are internally consistent — which is all the
//! deterministic simulator needs.

/// The serialization data model: a JSON-shaped value tree.
///
/// Integers are widened to `i128` so that `u64` counters and nanosecond
/// timestamps round-trip exactly (JSON numbers carry arbitrary precision in
/// text form; `f64` would silently lose bits above 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number with no fractional part.
    Int(i128),
    /// A JSON number with a fractional part or exponent.
    Float(f64),
    /// A JSON string.
    Str(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object; insertion order is preserved so output is deterministic.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

// `Value` is its own data model: serializing is the identity, deserializing
// keeps the tree as-is. Lets callers parse a document into a raw tree (e.g.
// `serde_json::from_str::<Value>`) and inspect it before typed decoding.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Looks up a key in a map's entry list (helper used by derived impls).
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compatibility alias module mirroring `serde::de::Error::custom` call sites.
pub mod de {
    pub use crate::Error;
}

/// Types that can be rendered into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// Re-export the derive macros under the trait names, as real serde does with
// its `derive` feature.
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        if *self <= i128::MAX as u128 {
            Value::Int(*self as i128)
        } else {
            // Too wide for the Int variant: carry as a decimal string.
            Value::Str(self.to_string())
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => u128::try_from(*i).map_err(|_| Error::custom("negative u128")),
            Value::Str(s) => s.parse().map_err(|_| Error::custom("bad u128 string")),
            _ => Err(Error::custom("expected u128")),
        }
    }
}

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    _ => Err(Error::custom("expected number")),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::custom("expected null")),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::custom("wrong array length"))
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($n),+].len();
                if items.len() != expected {
                    return Err(Error::custom("wrong tuple length"));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: Serialize,
    V: Serialize,
    S: std::hash::BuildHasher,
{
    fn to_value(&self) -> Value {
        // Maps serialize as an array of [key, value] pairs so that non-string
        // key types work uniformly.
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom("expected map array"))?;
        let mut out =
            std::collections::HashMap::with_capacity_and_hasher(items.len(), S::default());
        for item in items {
            let pair = item
                .as_array()
                .ok_or_else(|| Error::custom("expected pair"))?;
            if pair.len() != 2 {
                return Err(Error::custom("expected [key, value] pair"));
            }
            out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom("expected map array"))?;
        let mut out = std::collections::BTreeMap::new();
        for item in items {
            let pair = item
                .as_array()
                .ok_or_else(|| Error::custom("expected pair"))?;
            if pair.len() != 2 {
                return Err(Error::custom("expected [key, value] pair"));
            }
            out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::from_value(v)?.into())
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::from_value(v)?.into_iter().collect())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::from_value(v)?.into_iter().collect())
    }
}

//! Offline stand-in for `proptest`.
//!
//! Deterministic random-input testing with the subset of proptest's surface
//! this workspace uses:
//!
//! * `proptest! { #[test] fn name(arg in strategy, ...) { body } }`
//! * strategies: integer ranges (`0u8..8`, `1usize..=9`), `any::<T>()`,
//!   `proptest::collection::vec(strategy, size_range)`, and tuples of
//!   strategies;
//! * assertions: `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   `prop_assume!`.
//!
//! Unlike real proptest there is **no shrinking** and no persistence — each
//! property runs a fixed number of deterministic cases (default 48, override
//! with the `PROPTEST_CASES` environment variable). Failures report the case
//! number, which is enough to reproduce (the sequence is seeded per-property
//! from a fixed constant).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;

#[doc(hidden)]
pub use rand as __rand;

/// How a strategy draws values.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Number of cases each property runs (reads `PROPTEST_CASES`, default 48).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// `any::<T>()`
// ---------------------------------------------------------------------------

/// Full-domain strategy for a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Builds the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Types with a full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                // Mix edge cases in explicitly: real proptest biases towards
                // boundaries, and several workspace properties rely on hitting
                // small values.
                match rng.gen_range(0u32..8) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.gen::<$t>(),
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

// ---------------------------------------------------------------------------
// Collections and tuples
// ---------------------------------------------------------------------------

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Builds a vector strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy {
            element,
            min: size.min,
            max: size.max,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.min >= self.max {
                self.min
            } else {
                rng.gen_range(self.min..=self.max)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end.saturating_sub(1),
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property in the block runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Builds a config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Defines deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $crate::proptest! {
            @internal ($config);
            $($(#[$meta])* fn $name($($arg in $strategy),+) $body)+
        }
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $crate::proptest! {
            @internal ($crate::ProptestConfig::with_cases($crate::cases()));
            $($(#[$meta])* fn $name($($arg in $strategy),+) $body)+
        }
    };
    (@internal ($config:expr);
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                // Seed folds in the property name so sibling properties see
                // different sequences, deterministically.
                let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
                for __b in stringify!($name).bytes() {
                    __seed = __seed.wrapping_mul(0x0100_0000_01b3).wrapping_add(__b as u64);
                }
                let mut __rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
                let __cases = ($config).cases;
                for __case in 0..__cases {
                    $(let $arg = ($strategy).sample(&mut __rng);)+
                    let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(__message) = __result {
                        panic!("property {} failed on case {}/{}: {}",
                               stringify!($name), __case + 1, __cases, __message);
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a property, failing the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_hold(x in 3u64..10, v in collection::vec(any::<u8>(), 0..16)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() < 16);
        }

        #[test]
        fn assume_skips(a in any::<u8>(), b in any::<u8>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn tuples_sample(pair in (0u8..4, collection::vec(any::<u8>(), 1..3))) {
            prop_assert!(pair.0 < 4);
            prop_assert!(!pair.1.is_empty());
        }
    }
}

//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free API shape:
//! `lock()` / `read()` / `write()` return guards directly (poisoned locks are
//! recovered, matching parking_lot's no-poisoning semantics).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }
}

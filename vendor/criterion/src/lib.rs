//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, `criterion_group!`, `criterion_main!` — backed by a simple
//! warm-up + timed-batch harness that prints mean wall-clock time per
//! iteration. No statistics, plots or comparisons; enough to run
//! `cargo bench` offline and eyeball relative numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.label, self.sample_size, &mut routine);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut wrapped = |b: &mut Bencher| routine(b, input);
        run_one(&id.label, self.sample_size, &mut wrapped);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Per-benchmark iteration driver.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, once per sample after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, routine: &mut F) {
    let mut bencher = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    routine(&mut bencher);
    let mean_ns = if bencher.iters == 0 {
        0.0
    } else {
        bencher.total.as_nanos() as f64 / bencher.iters as f64
    };
    println!(
        "bench: {name:<48} {mean_ns:>14.0} ns/iter ({} iters)",
        bencher.iters
    );
}

/// Declares a group of benchmark functions (each takes `&mut Criterion`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

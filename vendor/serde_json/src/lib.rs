//! Offline stand-in for `serde_json`.
//!
//! Renders the miniature serde stand-in's [`serde::Value`] trees to real JSON
//! text (compact and pretty) and parses JSON text back. Integers round-trip
//! exactly through `i128`; floats use Rust's shortest round-trip formatting.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|_| Error::custom("invalid utf-8"))?;
    from_str(text)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        let text = f.to_string();
        out.push_str(&text);
        // Guarantee a float shape so it round-trips as Float (serde_json prints
        // `1.0` for 1.0 as well).
        if !text.contains('.') && !text.contains('e') && !text.contains('E') {
            out.push_str(".0");
        }
    } else {
        // Like serde_json: non-finite floats render as null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::custom(format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        if self.depth > MAX_DEPTH {
            return Err(Error::custom("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_map(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::custom("unexpected character in JSON")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::custom("invalid JSON keyword"))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => return Err(Error::custom("expected ',' or ']' in array")),
            }
        }
        self.depth -= 1;
        Ok(Value::Array(items))
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(Error::custom("expected ',' or '}' in object")),
            }
        }
        self.depth -= 1;
        Ok(Value::Map(entries))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::custom("lone high surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::custom("bad low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| Error::custom("bad unicode escape"))?);
                    }
                    _ => return Err(Error::custom("bad escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(Error::custom("control char in string")),
                Some(b) => {
                    // Re-decode UTF-8: walk back and take the full char.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(Error::custom("truncated utf-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("bad hex digit"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom("bad float literal"))
        } else {
            match text.parse::<i128>() {
                Ok(i) => Ok(Value::Int(i)),
                // Overflow: fall back to float semantics.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::custom("bad integer literal")),
            }
        }
    }
}

fn utf8_width(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b >> 5 == 0b110 {
        2
    } else if b >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v: Vec<u64> = vec![1, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let s = String::from("he\"llo\nworld");
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);

        let pair: (u64, String) = (9, "x".into());
        let back: (u64, String) = from_str(&to_string(&pair).unwrap()).unwrap();
        assert_eq!(back, pair);
    }

    #[test]
    fn large_u64_roundtrips_exactly() {
        let v: u64 = u64::MAX - 3;
        let back: u64 = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_float_shape() {
        let f: f64 = 2.0;
        assert_eq!(to_string(&f).unwrap(), "2.0");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn options_roundtrip() {
        let none: Option<u32> = None;
        assert_eq!(to_string(&none).unwrap(), "null");
        let some: Option<u32> = from_str("17").unwrap();
        assert_eq!(some, Some(17));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("[1,").is_err());
        assert!(from_str::<u64>("nul").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}

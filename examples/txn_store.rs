//! Cross-shard atomic transactions through the typed `Request` API.
//!
//! Four R-Raft shards; shards 0 and 1 are confidential. Clients submit a mix
//! of [`Request::Single`] operations (the fast path — identical to the
//! pre-transaction API) and [`Request::Txn`] multi-key transactions that span
//! replica groups. The coordinator runs two-phase commit across the
//! participating shard leaders, and **every** 2PC frame travels through the
//! shield layer: MAC + trusted counter always, AEAD-sealed whenever any
//! participant shard is confidential (stricter wins).
//!
//! The demo's bank-style invariant makes atomicity visible: every transaction
//! writes the *same* transfer tag to one "debit" key and one "credit" key on
//! different shards — after the run, the two sides of every account pair
//! carry the same tag on every replica, or the transfer never happened.
//!
//! ```bash
//! cargo run --example txn_store
//! ```

use recipe::core::{Operation, Request};
use recipe::protocols::RaftReplica;
use recipe::shard::{DeploymentSpec, ShardPolicy, ShardedCluster};
use recipe_sim::RangeStateTransfer;

fn main() {
    const SHARDS: usize = 4;
    const PAIRS: usize = 12;
    let spec = DeploymentSpec::new(SHARDS, 3)
        .with_clients(24, 3_000)
        .with_shard_policy(0, ShardPolicy::confidential())
        .with_shard_policy(1, ShardPolicy::confidential());
    let mut cluster = ShardedCluster::<RaftReplica>::build(spec);

    // Account pairs whose two sides live on different shards — transfers
    // between them are genuinely cross-shard (and cross-policy: some pairs
    // straddle the confidential/plaintext boundary).
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = {
        let router = cluster.router();
        let mut pairs = Vec::new();
        let mut candidate = 0u64;
        while pairs.len() < PAIRS {
            let debit = format!("debit:{candidate:06}").into_bytes();
            let credit = format!("credit:{candidate:06}").into_bytes();
            candidate += 1;
            if router.shard_for_key(&debit) != router.shard_for_key(&credit) {
                pairs.push((debit, credit));
            }
        }
        pairs
    };

    let pairs_for_workload = pairs.clone();
    let stats = cluster.run_requests(move |client, seq| {
        if client % 2 == 0 {
            // Transfer: both sides commit atomically or neither does.
            let (debit, credit) = &pairs_for_workload[((client + 3 * seq) as usize) % PAIRS];
            let tag = format!("transfer-{client}-{seq}").into_bytes();
            Some(Request::Txn(vec![
                Operation::Put {
                    key: debit.clone(),
                    value: tag.clone(),
                },
                Operation::Put {
                    key: credit.clone(),
                    value: tag,
                },
            ]))
        } else {
            // Plain single-key traffic interleaves on the fast path.
            Some(Request::Single(Operation::Put {
                key: format!("audit:{client}:{}", seq % 128).into_bytes(),
                value: vec![0x5A; 128],
            }))
        }
    });

    println!(
        "total: {} ops at {:.0} ops/s (mean {:.1} us)",
        stats.total.committed, stats.total.throughput_ops, stats.total.mean_latency_us
    );
    println!(
        "transactions: {} committed ({} cross-shard, max fan-out {}), {} aborted on conflicts and retried",
        stats.txn.committed, stats.txn.cross_shard_committed, stats.txn.max_fanout, stats.txn.aborted
    );
    println!(
        "2PC frames: {} sent, {} AEAD-sealed (a confidential shard participated), {} rejected by the shield",
        stats.txn.frames_sent, stats.txn.sealed_frames, stats.txn.frames_rejected
    );
    for (shard, s) in stats.per_shard.iter().enumerate() {
        println!(
            "shard {shard} ({:>12}): {:>5} ops, mean {:>7.1} us",
            cluster.confidentiality_of(shard).label(),
            s.committed,
            s.mean_latency_us,
        );
    }

    // Atomicity check: both sides of every pair hold the same transfer tag
    // on every replica of their respective shards.
    cluster.quiesce(200_000_000);
    let read = |cluster: &mut ShardedCluster<RaftReplica>, key: &[u8]| -> Option<Vec<u8>> {
        let shard = cluster.router().shard_for_key(key);
        let mut value = None;
        for node in cluster.shard(shard).node_ids() {
            let replica_value = cluster
                .shard_mut(shard)
                .replica_mut(node)
                .read_entry(key)
                .ok()
                .flatten()
                .map(|entry| entry.value);
            match &value {
                None => value = Some(replica_value),
                Some(seen) => assert_eq!(seen, &replica_value, "replica divergence"),
            }
        }
        value.flatten()
    };
    let mut transferred = 0;
    for (debit, credit) in &pairs {
        let d = read(&mut cluster, debit);
        let c = read(&mut cluster, credit);
        assert_eq!(d, c, "a transfer committed on one side only!");
        if d.is_some() {
            transferred += 1;
        }
    }
    println!(
        "\natomicity verified: {transferred}/{PAIRS} account pairs transferred, every pair's \
         two sides (on different shards) carry the same tag on every replica."
    );
}

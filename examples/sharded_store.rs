//! Sharded store: partition the keyspace over four independent R-Raft groups
//! behind a consistent-hash router and drive cross-shard client traffic.
//!
//! ```bash
//! cargo run --example sharded_store
//! ```

use recipe::protocols::RaftReplica;
use recipe::shard::{op_from_workload, DeploymentSpec, ShardedCluster};
use recipe::workload::WorkloadSpec;
use std::cell::RefCell;

fn main() {
    // 1. One declarative spec: four shards, each an independent 3-replica
    //    R-Raft group with its own leader, attestation domain and fault
    //    budget (f = 1 per shard). The spec replaces the old three-step
    //    (replica closure + uniform config + cluster constructor).
    const SHARDS: usize = 4;
    let spec = DeploymentSpec::new(SHARDS, 3).with_clients(48, 2_000);
    let mut cluster = ShardedCluster::<RaftReplica>::build(spec);

    // 2. Show where keys land. Always ask the *cluster's* router: it is the
    //    authoritative placement, including any rebalancing epoch bumps — a
    //    separately-constructed router would silently diverge from the real
    //    placement after the first online migration.
    for key in ["user00000001", "user00004711", "user00002642"] {
        println!(
            "{key} -> shard {}",
            cluster.router().shard_for_key(key.as_bytes())
        );
    }

    // 3. One global closed-loop client population issues a YCSB Zipfian
    //    workload; every operation is routed by key, so consecutive operations
    //    of one client hop across shards (cross-shard traffic).
    let generator = RefCell::new(WorkloadSpec::ycsb(0.7, 256).generator());
    let stats =
        cluster.run(move |_client, _seq| op_from_workload(generator.borrow_mut().next_op()));

    // 4. Aggregate and per-shard figures.
    println!(
        "\ntotal: {} ops ({} reads / {} writes) at {:.0} ops/s, mean {:.1} us, p99 {:.1} us",
        stats.total.committed,
        stats.total.committed_reads,
        stats.total.committed_writes,
        stats.total.throughput_ops,
        stats.total.mean_latency_us,
        stats.total.p99_latency_us,
    );
    for (shard, s) in stats.per_shard.iter().enumerate() {
        println!(
            "shard {shard}: {:>5} ops at {:>8.0} ops/s, mean {:>7.1} us ({} messages)",
            s.committed, s.throughput_ops, s.mean_latency_us, s.messages_delivered
        );
    }
    println!(
        "load imbalance: {:.2}x the fair share on the busiest shard",
        stats.imbalance
    );
}

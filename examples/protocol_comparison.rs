//! Runs all four Recipe-transformed protocols plus the PBFT and Damysus baselines
//! on the same YCSB-style workload and prints a small comparison table (a
//! mini-version of Figure 4).
//!
//! ```bash
//! cargo run --release --example protocol_comparison
//! ```

use recipe_bench_free::run_all;

// The bench crate is not a dependency of the umbrella crate (it is a harness), so
// this example re-implements the comparison inline using the public APIs.
mod recipe_bench_free {
    use recipe::bft::{DamysusReplica, PbftReplica};
    use recipe::core::{Membership, Operation};
    use recipe::protocols::{AbdReplica, AllConcurReplica, ChainReplica, RaftReplica};
    use recipe::sim::{ClientModel, CostProfile, Replica, RunStats, SimCluster, SimConfig};
    use recipe::workload::{WorkloadOp, WorkloadSpec};
    use std::cell::RefCell;

    fn run<R: Replica>(replicas: Vec<R>, profile: CostProfile, read_ratio: f64) -> RunStats {
        let n = replicas.len();
        let mut config = SimConfig::uniform(n, profile);
        config.clients = ClientModel {
            clients: 16,
            total_operations: 800,
        };
        let mut cluster = SimCluster::new(replicas, config);
        let generator = RefCell::new(WorkloadSpec::ycsb(read_ratio, 256).generator());
        cluster.run(move |_, _| match generator.borrow_mut().next_op() {
            WorkloadOp::Read { key } => Operation::Get { key },
            WorkloadOp::Write { key, value } => Operation::Put { key, value },
        })
    }

    pub fn run_all(read_ratio: f64) {
        let m3 = Membership::of_size(3, 1);
        let m4 = Membership::of_size(4, 1);
        let results: Vec<(&str, RunStats)> = vec![
            (
                "PBFT",
                run(
                    (0..4).map(|id| PbftReplica::new(id, m4.clone())).collect(),
                    CostProfile::pbft_baseline(),
                    read_ratio,
                ),
            ),
            (
                "Damysus",
                run(
                    (0..3)
                        .map(|id| DamysusReplica::new(id, m3.clone()))
                        .collect(),
                    CostProfile::damysus_baseline(),
                    read_ratio,
                ),
            ),
            (
                "R-Raft",
                run(
                    (0..3)
                        .map(|id| RaftReplica::recipe(id, m3.clone(), false))
                        .collect(),
                    CostProfile::recipe(),
                    read_ratio,
                ),
            ),
            (
                "R-CR",
                run(
                    (0..3)
                        .map(|id| ChainReplica::recipe(id, m3.clone(), false))
                        .collect(),
                    CostProfile::recipe(),
                    read_ratio,
                ),
            ),
            (
                "R-ABD",
                run(
                    (0..3)
                        .map(|id| AbdReplica::recipe(id, m3.clone(), false))
                        .collect(),
                    CostProfile::recipe(),
                    read_ratio,
                ),
            ),
            (
                "R-AllConcur",
                run(
                    (0..3)
                        .map(|id| AllConcurReplica::recipe(id, m3.clone(), false))
                        .collect(),
                    CostProfile::recipe(),
                    read_ratio,
                ),
            ),
        ];
        let baseline = results[0].1.throughput_ops;
        println!("\nworkload: {:.0}% reads, 256 B values", read_ratio * 100.0);
        println!(
            "{:<12} {:>16} {:>12} {:>10}",
            "protocol", "throughput(op/s)", "latency(us)", "vs PBFT"
        );
        for (name, stats) in &results {
            println!(
                "{:<12} {:>16.0} {:>12.1} {:>9.1}x",
                name,
                stats.throughput_ops,
                stats.mean_latency_us,
                stats.throughput_ops / baseline
            );
        }
    }
}

fn main() {
    for ratio in [0.5, 0.9] {
        run_all(ratio);
    }
}

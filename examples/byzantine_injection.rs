//! Demonstrates Recipe's defence against a Byzantine network and a Byzantine host:
//! replayed/duplicated traffic is rejected by the non-equivocation layer, and host
//! memory corruption is caught by the partitioned KV store's integrity checks.
//!
//! ```bash
//! cargo run --example byzantine_injection
//! ```

use recipe::core::{Membership, Operation};
use recipe::kv::{KvError, PartitionedKvStore, StoreConfig, Timestamp};
use recipe::net::FaultPlan;
use recipe::protocols::RaftReplica;
use recipe::sim::{ClientModel, CostProfile, SimCluster, SimConfig};
use recipe_net::NodeId;

fn main() {
    // --- Byzantine network: duplicates and replays of authenticated traffic. ---
    let membership = Membership::of_size(3, 1);
    let replicas: Vec<RaftReplica> = (0..3)
        .map(|id| RaftReplica::recipe(id, membership.clone(), false))
        .collect();
    let mut config = SimConfig::uniform(3, CostProfile::recipe());
    config.clients = ClientModel {
        clients: 8,
        total_operations: 300,
    };
    config.fault_plan = FaultPlan {
        replay_probability: 0.08,
        duplicate_probability: 0.08,
        ..FaultPlan::default()
    };
    let mut cluster = SimCluster::new(replicas, config);
    let stats = cluster.run(|client, seq| Operation::Put {
        key: format!("acct{:03}", (client + seq) % 50).into_bytes(),
        value: format!("v{seq}").into_bytes(),
    });
    let rejected: u64 = (0..3)
        .map(|id| cluster.replica(NodeId(id)).rejected_messages())
        .sum();
    println!(
        "network adversary: {} ops committed, {} messages replayed/duplicated by the \
         adversary, {} rejected by the non-equivocation layer",
        stats.committed, stats.messages_replayed, rejected
    );

    // --- Byzantine host: corrupt the value bytes behind the enclave's back. ---
    let mut store = PartitionedKvStore::new(StoreConfig::default());
    store
        .write(b"balance", b"1000", Timestamp::new(1, 0))
        .unwrap();
    store.corrupt_host_value(b"balance");
    match store.get(b"balance") {
        Err(KvError::IntegrityViolation { .. }) => {
            println!("host adversary: tampered value detected by the integrity check")
        }
        other => println!("unexpected result: {other:?}"),
    }
}

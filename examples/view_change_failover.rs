//! Kills the R-Raft leader mid-run and shows the trusted-lease failure detector
//! electing a new leader while committed state survives.
//!
//! ```bash
//! cargo run --example view_change_failover
//! ```

use recipe::core::{Membership, Operation};
use recipe::protocols::RaftReplica;
use recipe::sim::{ClientModel, CostProfile, SimCluster, SimConfig};
use recipe_net::NodeId;

fn main() {
    let membership = Membership::of_size(3, 1);
    let replicas: Vec<RaftReplica> = (0..3)
        .map(|id| RaftReplica::recipe(id, membership.clone(), false))
        .collect();
    let mut config = SimConfig::uniform(3, CostProfile::recipe());
    config.clients = ClientModel {
        clients: 8,
        total_operations: 600,
    };
    config.max_virtual_ns = 3_000_000_000;
    let mut cluster = SimCluster::new(replicas, config);

    // Crash the initial leader (node 0) two virtual milliseconds into the run.
    cluster.crash_at(NodeId(0), 2_000_000);

    let stats = cluster.run(|client, seq| Operation::Put {
        key: format!("k{:02}", (client + seq) % 30).into_bytes(),
        value: vec![b'x'; 128],
    });

    for id in 1..3 {
        let replica = cluster.replica(NodeId(id));
        println!(
            "replica {id}: view = {}, leader = {}, applied entries = {}",
            replica.view(),
            replica.is_leader(),
            replica.committed_entries()
        );
    }
    println!(
        "committed {} operations despite the leader crash (elapsed {:.1} virtual ms)",
        stats.committed,
        stats.elapsed_secs * 1e3
    );
}

//! Per-shard confidentiality policies: one deployment spec, four R-Raft
//! shards, and only the shards holding sensitive ranges pay the encryption
//! cost.
//!
//! Shard 0 and shard 1 run [`ShardPolicy::confidential`]: their replicas
//! AEAD-encrypt every protocol payload inside the enclave, seal stored values
//! before they enter host memory, and their cost profiles charge the
//! per-byte encryption work. Shards 2 and 3 keep the workspace default
//! (plaintext: integrity + non-equivocation only). Shard 1 additionally
//! batches its leader traffic — policies compose per shard.
//!
//! ```bash
//! cargo run --example policy_store
//! ```

use recipe::protocols::{BatchConfig, RaftReplica};
use recipe::shard::{op_from_workload, DeploymentSpec, ShardPolicy, ShardedCluster};
use recipe::workload::WorkloadSpec;
use std::cell::RefCell;

fn main() {
    const SHARDS: usize = 4;
    let spec = DeploymentSpec::new(SHARDS, 3)
        .with_clients(48, 2_000)
        .with_shard_policy(0, ShardPolicy::confidential())
        .with_shard_policy(
            1,
            ShardPolicy::confidential().with_batch(BatchConfig::of_ops(16)),
        );

    // Policies are inspectable before anything is built — a client library
    // or auditor can resolve the effective per-shard configuration offline.
    for shard in 0..SHARDS {
        let policy = spec.policy_for(shard);
        println!(
            "shard {shard}: {} (batch_ops {})",
            policy.confidentiality.label(),
            policy.batch.max_ops
        );
    }

    let mut cluster = ShardedCluster::<RaftReplica>::build(spec);
    let generator = RefCell::new(WorkloadSpec::ycsb(0.5, 256).generator());
    let stats =
        cluster.run(move |_client, _seq| op_from_workload(generator.borrow_mut().next_op()));

    println!(
        "\ntotal: {} ops at {:.0} ops/s (mean {:.1} us)",
        stats.total.committed, stats.total.throughput_ops, stats.total.mean_latency_us,
    );
    for (shard, s) in stats.per_shard.iter().enumerate() {
        println!(
            "shard {shard} ({:>12}): {:>5} ops, mean {:>7.1} us, p99 {:>7.1} us",
            cluster.confidentiality_of(shard).label(),
            s.committed,
            s.mean_latency_us,
            s.p99_latency_us,
        );
    }
    println!(
        "\nthe confidential shards' higher latency is the policy's encryption \
         cost; the plaintext shards serve at the usual Recipe cost."
    );
}

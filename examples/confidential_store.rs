//! Confidential mode (Figure 5): values and protocol payloads are encrypted before
//! they leave the enclave, so neither the untrusted host nor the network learns
//! plaintext — a property classical BFT protocols do not offer.
//!
//! ```bash
//! cargo run --example confidential_store
//! ```

use recipe::core::Membership;
use recipe::kv::{PartitionedKvStore, StoreConfig, Timestamp};
use recipe::protocols::ProtocolShield;
use recipe_crypto::CipherKey;
use recipe_net::NodeId;

fn main() {
    // --- Confidential KV store: host memory only ever sees ciphertext. ---
    let mut store = PartitionedKvStore::new(
        StoreConfig::default().with_cipher(CipherKey::from_bytes([0x42; 32])),
    );
    store
        .write(
            b"patient:17",
            b"diagnosis: hypertension",
            Timestamp::new(1, 0),
        )
        .unwrap();
    let host_view = store.host_visible_bytes(b"patient:17").unwrap();
    let enclave_view = store.get(b"patient:17").unwrap().value;
    println!(
        "host-visible bytes   : {:02x?}...",
        &host_view[..16.min(host_view.len())]
    );
    println!(
        "enclave (decrypted)  : {}",
        String::from_utf8_lossy(&enclave_view)
    );

    // --- Confidential messaging between two attested replicas. ---
    let membership = Membership::of_size(3, 1);
    let mut sender = ProtocolShield::recipe(NodeId(0), &membership, true);
    let mut receiver = ProtocolShield::recipe(NodeId(1), &membership, true);
    let wire = sender.wrap(NodeId(1), 1, b"replicate patient:17 -> hypertension");
    println!(
        "wire bytes contain plaintext? {}",
        wire.windows(b"hypertension".len())
            .any(|w| w == b"hypertension")
    );
    let delivered = receiver.unwrap(NodeId(0), &wire);
    println!(
        "receiver decrypted   : {}",
        String::from_utf8_lossy(&delivered.as_slice()[0].1)
    );
}

//! Quickstart: attest a 3-replica Recipe cluster, run R-Raft, and read back a value.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use recipe::core::{Membership, Operation};
use recipe::protocols::RaftReplica;
use recipe::sim::{ClientModel, CostProfile, SimCluster, SimConfig};
use recipe_net::NodeId;

fn main() {
    // 1. Build a 2f+1 = 3 replica membership tolerating one fault.
    let membership = Membership::of_size(3, 1);
    println!(
        "membership: {:?} (quorum = {})",
        membership.members(),
        membership.quorum()
    );

    // 2. Launch R-Raft replicas. `RaftReplica::recipe` provisions each replica's
    //    enclave with the channel keys the CAS would hand out after attestation.
    let replicas: Vec<RaftReplica> = (0..3)
        .map(|id| RaftReplica::recipe(id, membership.clone(), false))
        .collect();

    // 3. Drive the cluster with a small closed-loop client population.
    let mut config = SimConfig::uniform(3, CostProfile::recipe());
    config.clients = ClientModel {
        clients: 8,
        total_operations: 500,
    };
    let mut cluster = SimCluster::new(replicas, config);
    let stats = cluster.run(|client, seq| {
        if seq % 4 == 0 {
            Operation::Get {
                key: format!("user{:04}", client).into_bytes(),
            }
        } else {
            Operation::Put {
                key: format!("user{:04}", client).into_bytes(),
                value: format!("balance={seq}").into_bytes(),
            }
        }
    });

    println!(
        "committed {} ops ({} reads / {} writes) at {:.0} ops/s, mean latency {:.1} us",
        stats.committed,
        stats.committed_reads,
        stats.committed_writes,
        stats.throughput_ops,
        stats.mean_latency_us
    );

    // 4. Every replica holds the same, integrity-verified state.
    for id in 0..3 {
        let value = cluster.replica_mut(NodeId(id)).local_read(b"user0000");
        println!(
            "replica {id} -> user0000 = {:?}",
            value.map(|v| String::from_utf8_lossy(&v).into_owned())
        );
    }
}

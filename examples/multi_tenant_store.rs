//! Multi-tenant store: two tenants share one sharded deployment behind the
//! tenant gateway. Every request traverses the middleware pipeline
//! (authenticate → resolve tenant → token-bucket admission → key scoping)
//! before it reaches the router, so the tenants get disjoint keyspaces and
//! independent quotas — `acme` runs unthrottled while `hammer`, granted a
//! tiny quota, has its excess demand deferred instead of degrading `acme`.
//!
//! ```bash
//! cargo run --example multi_tenant_store
//! ```

use recipe::gateway::{scoped_prefix, GatewayConfig, TenantSpec};
use recipe::protocols::RaftReplica;
use recipe::shard::{request_from_workload, DeploymentSpec, ShardedCluster};
use recipe::workload::{TenantMixSpec, WorkloadRequest, WorkloadSpec};
use std::cell::RefCell;

fn main() {
    // 1. Two tenants on one deployment. `acme` keeps the default unlimited
    //    quota; `hammer` is clamped to 500 ops/s with a 4-op burst, far
    //    below what its closed-loop clients will demand.
    let gateway = GatewayConfig::enabled()
        .with_tenant(TenantSpec::new("acme"))
        .with_tenant(TenantSpec::new("hammer").with_quota(500).with_burst(4));
    let spec = DeploymentSpec::new(2, 3)
        .with_clients(12, 2_000)
        .with_gateway(gateway);
    let mut cluster = ShardedCluster::<RaftReplica>::build(spec);

    // 2. Tenant-scoped keyspaces: the gateway prefixes every key with
    //    `<tenant>/` after admission, so the *same* logical key from the two
    //    tenants names two different entries — and may land on different
    //    shards, because placement hashes the scoped key.
    for tenant in ["acme", "hammer"] {
        let mut key = scoped_prefix(tenant);
        key.extend_from_slice(b"user00000001");
        println!(
            "logical key user00000001 for {tenant:<6} -> stored as {:<20} on shard {}",
            String::from_utf8_lossy(&key),
            cluster.router().shard_for_key(&key)
        );
    }

    // 3. Clients are assigned to tenants round-robin (client 0 -> acme,
    //    client 1 -> hammer, ...); each tenant runs the same YCSB mix with
    //    per-client seeded streams, so the run is fully deterministic.
    let mix = TenantMixSpec::uniform(2, WorkloadSpec::ycsb(0.5, 256));
    let generators = RefCell::new(mix.generators(12));
    let stats = cluster.run_requests(move |client, _seq| {
        let op = generators.borrow_mut()[client as usize].next_op();
        Some(request_from_workload(WorkloadRequest::Single(op)))
    });

    // 4. Per-tenant admission accounting, straight from the gateway.
    println!("\nper-tenant gateway accounting:");
    for t in &stats.gateway.tenants {
        println!(
            "  {:<6} admitted {:>5}  throttled {:>5}  rejected {:>3}  committed ops {:>5}",
            t.tenant, t.admitted, t.throttled, t.rejected, t.committed_ops
        );
    }
    let hammer = stats
        .gateway
        .tenants
        .iter()
        .find(|t| t.tenant == "hammer")
        .expect("hammer accounted");
    assert!(hammer.throttled > 0, "hammer was never throttled");

    println!(
        "\ntotal: {} ops at {:.0} ops/s, mean {:.1} us, p99 {:.1} us",
        stats.total.committed,
        stats.total.throughput_ops,
        stats.total.mean_latency_us,
        stats.total.p99_latency_us,
    );
    println!(
        "hammer's overload was deferred at the gateway ({} throttles), not queued in the router",
        hammer.throttled
    );
}
